"""Chaos suite: seeded fault plans against the real wire protocol.

Every test here drives genuine kernel sockets.  The sweep replays ≥ 50
deterministic fault plans (byte corruption, truncation, delays, partial
writes, mid-stream disconnects) against a client/server session pair and
asserts the only possible outcomes are (a) the correct selected sum or
(b) a typed :class:`~repro.exceptions.ReproError` — never a wrong
answer, never a hang (every socket carries a deadline and every thread
join is checked).

The resume test then checks the economics: a client disconnected after
k of m chunks re-sends exactly m − k chunks on reconnect — verified via
wire byte counters — and performs exactly one Paillier encryption per
element over its whole lifetime, because re-encryption is the cost the
resumable protocol exists to avoid (paper §3: client encryption
dominates).
"""

import socket
import threading

import pytest

from repro.crypto.paillier import generate_keypair
from repro.crypto.rng import DeterministicRandom
from repro.datastore.workload import WorkloadGenerator
from repro.exceptions import ReproError
from repro.net import codec
from repro.net.faults import FaultEvent, FaultKind, FaultPlan, FaultyTransport
from repro.net.transport import RetryPolicy, SocketTransport
from repro.spfe.session import (
    ClientSession,
    ServerSession,
    SessionRegistry,
    run_over_transport,
    run_resilient,
    serve_over_transport,
)

KEY_BITS = 128
N = 24
CHUNK = 4
CHUNKS = N // CHUNK
READ_TIMEOUT = 5.0
JOIN_TIMEOUT = 15.0

pytestmark = pytest.mark.chaos


@pytest.fixture(scope="module")
def workload():
    generator = WorkloadGenerator("chaos-transport")
    database = generator.database(N, value_bits=16)
    selection = generator.random_selection(N, N // 3)
    keypair = generate_keypair(KEY_BITS, DeterministicRandom("chaos-keypair"))
    return database, selection, database.select_sum(selection), keypair


def make_client(workload, seed):
    _, selection, __, keypair = workload
    return ClientSession(
        selection,
        key_bits=KEY_BITS,
        chunk_size=CHUNK,
        rng=DeterministicRandom("chaos-client-%r" % (seed,)),
        keypair=keypair,
    )


def frame_sizes():
    """Exact wire sizes of the v2 handshake and chunk frames."""
    hello = len(codec.encode_hello(KEY_BITS, N, CHUNK, b"\0" * 16, 0))
    pk = len(codec.encode_public_key((1 << (KEY_BITS - 1)) + 1, KEY_BITS, 0))
    chunk = len(codec.encode_ciphertext_chunk([1] * CHUNK, KEY_BITS, 0))
    return hello, pk, chunk


class TestChaosSweep:
    """≥ 50 seeded fault plans over a real socketpair: correct sum or
    typed error, within the deadline.  Nothing else is acceptable."""

    @pytest.mark.parametrize("seed", range(50))
    def test_seeded_fault_plan(self, workload, seed):
        database, selection, expected, _ = workload
        hello, pk, chunk = frame_sizes()
        stream_bytes = hello + pk + CHUNKS * chunk
        plan = FaultPlan.generate(
            seed, stream_bytes=stream_bytes, events=3, max_delay_s=0.005
        )

        a, b = socket.socketpair()
        server = ServerSession(database, registry=SessionRegistry())
        server_failure = []

        def serve():
            with SocketTransport(b, read_timeout=READ_TIMEOUT) as transport:
                try:
                    serve_over_transport(server, transport)
                except ReproError as exc:
                    server_failure.append(exc)

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()

        client = make_client(workload, seed)
        transport = FaultyTransport(
            SocketTransport(a, read_timeout=READ_TIMEOUT), plan
        )
        try:
            value = run_over_transport(client, transport)
            outcome = ("ok", value)
        except ReproError as exc:
            outcome = ("error", exc)
        finally:
            transport.close()

        thread.join(JOIN_TIMEOUT)
        assert not thread.is_alive(), "server hung past its deadline\n" + plan.describe()
        if outcome[0] == "ok":
            assert outcome[1] == expected, "wrong sum under plan:\n" + plan.describe()
        else:
            assert isinstance(outcome[1], ReproError)
        if server_failure:
            assert isinstance(server_failure[0], ReproError)

    def test_sweep_covers_every_fault_kind(self, workload):
        """Sanity check on the sweep itself: the 50 generated plans must
        collectively exercise every fault kind and actually land inside
        the live stream window — otherwise the sweep tests nothing."""
        hello, pk, chunk = frame_sizes()
        stream_bytes = hello + pk + CHUNKS * chunk
        fault_positions = [
            event.position
            for seed in range(50)
            for event in FaultPlan.generate(seed, stream_bytes=stream_bytes, events=3)
        ]
        assert any(p < stream_bytes for p in fault_positions)
        kinds = {
            event.kind
            for seed in range(50)
            for event in FaultPlan.generate(seed, stream_bytes=stream_bytes, events=3)
        }
        assert kinds == set(FaultKind.ALL)


class TestResumeAccounting:
    def test_disconnect_resumes_with_exact_resend_count(self, workload):
        """Disconnected after k of m chunks → the reconnect re-sends
        exactly m − k chunk frames (byte counters prove it) and never
        re-encrypts an element."""
        database, selection, expected, _ = workload
        hello, pk, chunk = frame_sizes()
        k = 4
        cut = hello + pk + k * chunk  # first byte of chunk k never leaves
        plan = FaultPlan([FaultEvent(FaultKind.DISCONNECT, cut)])

        listener = socket.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]
        registry = SessionRegistry()
        sessions = []

        def serve():
            for _ in range(3):
                try:
                    connection, _ = listener.accept()
                except OSError:
                    return
                session = ServerSession(database, registry=registry)
                sessions.append(session)
                with SocketTransport(connection, read_timeout=READ_TIMEOUT) as t:
                    try:
                        serve_over_transport(session, t)
                    except ReproError:
                        pass
                if session.finished:
                    return

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()

        client = make_client(workload, "resume")
        transports = []

        def connect():
            inner = SocketTransport.connect(
                "127.0.0.1", port, connect_timeout=READ_TIMEOUT,
                read_timeout=READ_TIMEOUT,
            )
            transport = FaultyTransport(inner, plan) if not transports else inner
            transports.append(transport)
            return transport

        policy = RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0)
        value = run_resilient(client, connect, policy, sleep=lambda _s: None)
        thread.join(JOIN_TIMEOUT)
        listener.close()
        assert not thread.is_alive()

        assert value == expected
        # One encryption per element, across both connections.
        assert client.encryptions == N
        # The first connection delivered the handshake plus exactly k chunks.
        assert len(transports) == 2
        assert transports[0].inner.bytes_sent == cut
        assert sessions[0].chunk_frames_processed == k
        # The reconnect carried RESUME plus exactly m - k chunk frames.
        resume_len = len(codec.encode_resume(b"\0" * 16))
        assert transports[1].bytes_sent == resume_len + (CHUNKS - k) * chunk
        assert sessions[1].chunk_frames_processed == CHUNKS - k

    def test_every_cut_point_still_sums_correctly(self, workload):
        """Disconnect at each chunk boundary in turn; resume always
        completes with the right answer and zero re-encryption."""
        database, selection, expected, _ = workload
        hello, pk, chunk = frame_sizes()

        for k in range(CHUNKS):
            cut = hello + pk + k * chunk
            plan = FaultPlan([FaultEvent(FaultKind.DISCONNECT, cut)])
            listener = socket.create_server(("127.0.0.1", 0))
            port = listener.getsockname()[1]
            registry = SessionRegistry()

            def serve():
                for _ in range(3):
                    try:
                        connection, _ = listener.accept()
                    except OSError:
                        return
                    session = ServerSession(database, registry=registry)
                    with SocketTransport(connection, read_timeout=READ_TIMEOUT) as t:
                        try:
                            serve_over_transport(session, t)
                        except ReproError:
                            pass
                    if session.finished:
                        return

            thread = threading.Thread(target=serve, daemon=True)
            thread.start()
            client = make_client(workload, "cut-%d" % k)
            first = []

            def connect():
                inner = SocketTransport.connect(
                    "127.0.0.1", port, connect_timeout=READ_TIMEOUT,
                    read_timeout=READ_TIMEOUT,
                )
                if not first:
                    first.append(True)
                    return FaultyTransport(inner, plan)
                return inner

            policy = RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0)
            value = run_resilient(client, connect, policy, sleep=lambda _s: None)
            thread.join(JOIN_TIMEOUT)
            listener.close()
            assert not thread.is_alive()
            assert value == expected
            assert client.encryptions == N
