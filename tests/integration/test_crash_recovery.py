"""Crash-recovery chaos suite: the journal makes SIGKILL survivable.

Two layers:

* A deterministic **recovery matrix** that simulates process death at
  every interesting fault point (before the first journal write, mid
  chunk stream, after the result was computed but never delivered, and
  a double-crash during the recovery itself) by discarding the live
  server/registry and rebuilding both from the on-disk store — exactly
  what a restarted process does, minus the exec.  Every case asserts
  the byte-exact sum, zero re-encryption, and zero double-folded
  chunks.

* A real **SIGKILL fleet** test: `repro serve --state-dir` under the
  `ServerSupervisor`, killed ≥3 times at journal-verified fault points
  (the test polls the SQLite journal as its oracle — WAL mode admits
  concurrent readers), while a `run_resilient` client rides the
  restarts to the correct sum without re-encrypting a single chunk.
"""

import os
import signal
import sqlite3
import subprocess
import sys
import threading
import time

import pytest

from tests.conftest import SERVER_BACKENDS

from repro.crypto.rng import DeterministicRandom
from repro.datastore.database import ServerDatabase
from repro.net import codec
from repro.net.codec import FrameDecoder, FrameType
from repro.net.transport import RetryPolicy, SocketTransport
from repro.spfe.session import (
    ClientSession,
    ServerSession,
    SessionRegistry,
    run_resilient,
)
from repro.store.state import StateStore
from repro.store.supervisor import ServerSupervisor, SupervisorPolicy

pytestmark = pytest.mark.chaos

KEY_BITS = 128
CHUNK = 2
DB = ServerDatabase([5, 0, 7, 1, 9, 2, 0, 3], value_bits=8)
SELECTION = [1, 0, 1, 1, 0, 0, 1, 1]
EXPECTED = sum(w * v for w, v in zip(SELECTION, DB.values))


def make_client(seed):
    return ClientSession(
        SELECTION,
        key_bits=KEY_BITS,
        chunk_size=CHUNK,
        rng=DeterministicRandom(seed),
    )


def feed(server, client, frames):
    for data in frames:
        reply = server.receive_bytes(data)
        if reply:
            client.receive_bytes(reply)


def decode_frames(data):
    decoder = FrameDecoder()
    decoder.feed(data)
    return list(decoder.frames())


class Restartable:
    """A server whose process can 'die': only the store file survives."""

    def __init__(self, path):
        self.path = path
        self.store = None
        self.registry = None
        self.boot()

    def boot(self):
        self.store = StateStore(self.path)
        self.registry = SessionRegistry(capacity=8, store=self.store)
        return ServerSession(DB, registry=self.registry)

    def crash(self):
        # SIGKILL semantics: no flush, no handler — just drop the
        # in-memory world.  Whatever the journal committed, survives.
        self.store.close()
        self.store = None
        self.registry = None


class TestRecoveryMatrix:
    def test_crash_before_first_journal_write(self, tmp_path):
        """Death after HELLO: nothing journalled yet, so the resume is
        UNKNOWN and the client degrades to a fresh (cached) stream."""
        world = Restartable(str(tmp_path / "s.sqlite"))
        client = make_client("pre-ack")
        frames = list(client.initial_bytes())
        server = world.boot()
        feed(server, client, frames[:1])  # HELLO only — no key yet
        assert world.store.session_count() == 0
        world.crash()

        server = world.boot()
        raw = server.receive_bytes(client.resume_request())
        reply = decode_frames(raw)
        assert codec.decode_ack(reply[0].payload) == codec.RESUME_UNKNOWN
        client.receive_bytes(raw)
        encryptions = client.encryptions
        feed(server, client, client.resume_bytes())
        assert client.result == EXPECTED
        assert client.encryptions == encryptions  # cache reused
        world.crash()

    def test_crash_mid_chunk_stream_resumes_without_double_fold(
        self, tmp_path
    ):
        world = Restartable(str(tmp_path / "s.sqlite"))
        client = make_client("mid-stream")
        frames = list(client.initial_bytes())
        total = client.total_chunks
        server = world.boot()
        feed(server, client, frames[:4])  # HELLO, KEY, chunks 0 and 1
        assert world.store.load_session(client.session_id).chunks_received == 2
        world.crash()

        server = world.boot()
        raw = server.receive_bytes(client.resume_request())
        reply = decode_frames(raw)
        assert [f.frame_type for f in reply] == [FrameType.ACK]
        assert codec.decode_ack(reply[0].payload) == 2
        client.receive_bytes(raw)
        feed(server, client, client.resume_bytes())
        assert client.result == EXPECTED
        assert client.encryptions == len(SELECTION)
        # only the missing chunks were folded — never the ACKed ones
        assert server.chunk_frames_processed == total - 2
        assert world.registry.recoveries == 1
        state = world.registry.get(client.session_id)
        assert state.received == len(DB) and state.done
        world.crash()

    def test_crash_after_result_computed_but_not_sent(self, tmp_path):
        """The worst gap: the aggregate exists, the client never saw it.
        The journal's ``done`` flag lets the restarted server replay the
        RESULT without folding anything."""
        world = Restartable(str(tmp_path / "s.sqlite"))
        client = make_client("unsent-result")
        frames = list(client.initial_bytes())
        server = world.boot()
        result_bytes = b""
        for data in frames:
            result_bytes = server.receive_bytes(data)
        assert server.finished
        assert decode_frames(result_bytes)[0].frame_type == FrameType.RESULT
        # the RESULT was journalled *before* it was sent — and here it
        # is never delivered: the process dies with the bytes in hand
        assert world.store.load_session(client.session_id).done
        world.crash()

        server = world.boot()
        client.receive_bytes(server.receive_bytes(client.resume_request()))
        assert client.result == EXPECTED
        assert client.encryptions == len(SELECTION)
        assert server.chunk_frames_processed == 0  # replayed, not refolded
        world.crash()

    def test_double_crash_during_recovery(self, tmp_path):
        world = Restartable(str(tmp_path / "s.sqlite"))
        client = make_client("double-crash")
        frames = list(client.initial_bytes())
        server = world.boot()
        feed(server, client, frames[:3])  # HELLO, KEY, chunk 0
        world.crash()

        # first recovery: resume, land exactly one more chunk, die again
        server = world.boot()
        client.receive_bytes(server.receive_bytes(client.resume_request()))
        resumed = iter(client.resume_bytes())
        server.receive_bytes(next(resumed))
        assert world.store.load_session(client.session_id).chunks_received == 2
        world.crash()

        # second recovery completes from chunk 2
        server = world.boot()
        client.receive_bytes(server.receive_bytes(client.resume_request()))
        feed(server, client, client.resume_bytes())
        assert client.result == EXPECTED
        assert client.encryptions == len(SELECTION)
        assert server.chunk_frames_processed == client.total_chunks - 2
        world.crash()


# -- the real thing: SIGKILL a serving process, repeatedly -----------------


class SlowSendTransport:
    """Transport wrapper pacing sends so the kill loop can aim."""

    def __init__(self, inner, delay_s):
        self._inner = inner
        self._delay_s = delay_s

    def send(self, data):
        time.sleep(self._delay_s)
        self._inner.send(data)

    def recv(self, max_bytes):
        return self._inner.recv(max_bytes)

    def recv_ready(self):
        return self._inner.recv_ready()

    def set_read_timeout(self, timeout):
        self._inner.set_read_timeout(timeout)

    def close(self):
        self._inner.close()


def journal_progress(path, session_id):
    """Read (chunks_received, done) straight out of the WAL journal."""
    try:
        conn = sqlite3.connect(path, timeout=1.0)
    except sqlite3.Error:
        return None
    try:
        row = conn.execute(
            "SELECT chunks_received, done FROM sessions WHERE session_id = ?",
            (session_id,),
        ).fetchone()
        return row
    except sqlite3.Error:
        return None
    finally:
        conn.close()


def free_port():
    import socket as socket_module

    probe = socket_module.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


@pytest.mark.parametrize("backend", SERVER_BACKENDS)
def test_sigkill_fleet_survives_three_crashes(tmp_path, backend):
    """`repro serve --state-dir` under the supervisor, SIGKILLed at
    three journal-verified fault points; the resilient client finishes
    with the exact sum and zero re-encryption.  Runs once per connection
    front-end: warm-restart recovery must hold on asyncio too."""
    n = 96
    values = [(7 * i + 3) % 251 for i in range(n)]
    selection = [1 if i % 3 else 0 for i in range(n)]
    expected = sum(w * v for w, v in zip(selection, values))
    db_file = tmp_path / "values.txt"
    db_file.write_text("".join("%d\n" % v for v in values))
    state_dir = str(tmp_path / "state")
    store_path = os.path.join(state_dir, "repro-state.sqlite")
    port = free_port()

    supervisor = ServerSupervisor(
        [
            sys.executable, "-m", "repro", "serve",
            "--db", str(db_file),
            "--port", str(port),
            "--queries", "0",
            "--timeout", "5",
            "--state-dir", state_dir,
            "--backend", backend,
        ],
        policy=SupervisorPolicy(max_restarts=10, base_delay_s=0.05),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    client = ClientSession(
        selection,
        key_bits=KEY_BITS,
        chunk_size=4,  # 24 chunks at ~25 ms each: a wide kill window
        rng=DeterministicRandom("sigkill-fleet"),
    )
    outcome = {}

    def run_client():
        try:
            outcome["result"] = run_resilient(
                client,
                lambda: SlowSendTransport(
                    SocketTransport.connect(
                        "127.0.0.1", port,
                        connect_timeout=2.0, read_timeout=5.0,
                    ),
                    delay_s=0.025,
                ),
                policy=RetryPolicy(
                    max_attempts=60, base_delay_s=0.05, max_delay_s=0.5
                ),
            )
        except Exception as exc:  # pragma: no cover - failure path
            outcome["error"] = exc

    supervisor.start()
    runner = threading.Thread(target=run_client)
    kills = 0
    try:
        runner.start()
        # kill as soon as the journal proves the marked progress exists
        for target in (3, 9, 16):
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                row = journal_progress(store_path, client.session_id)
                if row is not None and (row[0] >= target or row[1]):
                    break
                time.sleep(0.002)
            else:
                pytest.fail("journal never reached chunk %d" % target)
            pid = supervisor.pid
            if pid is None:
                continue  # already between lives; the next target waits
            os.kill(pid, signal.SIGKILL)
            kills += 1
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline:
                if supervisor.pid is not None and supervisor.pid != pid:
                    break
                time.sleep(0.01)
        runner.join(timeout=60.0)
        assert not runner.is_alive(), "client never finished"
    finally:
        supervisor.stop()
        runner.join(timeout=10.0)

    assert "error" not in outcome, outcome.get("error")
    assert outcome["result"] == expected
    assert kills >= 3
    assert supervisor.restarts >= 3
    assert not supervisor.gave_up
    # the whole point of the journal: the client resumed across process
    # death instead of re-encrypting — exactly one encryption per element
    assert client.encryptions == len(selection)
    row = journal_progress(store_path, client.session_id)
    assert row is not None and row[1] == 1  # journalled as done
