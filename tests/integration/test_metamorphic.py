"""Metamorphic properties of the protocol family.

Rather than checking single outputs, these tests check *relations
between runs* that must hold for any correct implementation of the
functionality — a second, independent line of evidence beyond the
ground-truth comparisons:

* additivity over disjoint selections;
* linearity in the weights;
* invariance of the result under protocol variant;
* composition consistency between the grouped protocol and per-group
  runs, and between distributed partitions and the single-server run.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datastore.database import ServerDatabase
from repro.datastore.workload import WorkloadGenerator
from repro.spfe.batching import BatchedSelectedSumProtocol
from repro.spfe.combined import CombinedSelectedSumProtocol
from repro.spfe.context import ExecutionContext
from repro.spfe.grouped import GroupedSumProtocol
from repro.spfe.multiclient import MultiClientSelectedSumProtocol
from repro.spfe.multidatabase import DistributedSelectedSumProtocol
from repro.spfe.preprocessing import PreprocessedSelectedSumProtocol
from repro.spfe.selected_sum import SelectedSumProtocol


def run_plain(database, selection, seed):
    return SelectedSumProtocol(ExecutionContext(rng=seed)).run(
        database, selection
    ).value


class TestAdditivity:
    @settings(max_examples=15, deadline=None)
    @given(st.data())
    def test_disjoint_selections_add(self, data):
        n = data.draw(st.integers(2, 50))
        values = data.draw(st.lists(st.integers(0, 999), min_size=n, max_size=n))
        owner = data.draw(st.lists(st.integers(0, 2), min_size=n, max_size=n))
        database = ServerDatabase(values)
        sel_a = [1 if o == 0 else 0 for o in owner]
        sel_b = [1 if o == 1 else 0 for o in owner]
        union = [a | b for a, b in zip(sel_a, sel_b)]
        total_a = run_plain(database, sel_a, "a%d" % n)
        total_b = run_plain(database, sel_b, "b%d" % n)
        total_union = run_plain(database, union, "u%d" % n)
        assert total_a + total_b == total_union

    @settings(max_examples=15, deadline=None)
    @given(st.data())
    def test_weights_are_linear(self, data):
        n = data.draw(st.integers(1, 40))
        values = data.draw(st.lists(st.integers(0, 999), min_size=n, max_size=n))
        w1 = data.draw(st.lists(st.integers(0, 9), min_size=n, max_size=n))
        w2 = data.draw(st.lists(st.integers(0, 9), min_size=n, max_size=n))
        database = ServerDatabase(values)
        combined = [a + b for a, b in zip(w1, w2)]
        assert run_plain(database, combined, "c") == run_plain(
            database, w1, "1"
        ) + run_plain(database, w2, "2")

    def test_complement_selections(self):
        generator = WorkloadGenerator("complement")
        database = generator.database(200)
        selection = generator.random_selection(200, 80)
        complement = [1 - bit for bit in selection]
        everything = run_plain(database, [1] * 200, "all")
        assert run_plain(database, selection, "s") + run_plain(
            database, complement, "c"
        ) == everything == sum(database.values)


class TestVariantAgreement:
    @settings(max_examples=8, deadline=None)
    @given(st.data())
    def test_all_variants_compute_the_same_function(self, data):
        n = data.draw(st.integers(4, 40))
        values = data.draw(
            st.lists(st.integers(0, 2**20), min_size=n, max_size=n)
        )
        bits = data.draw(st.lists(st.integers(0, 1), min_size=n, max_size=n))
        database = ServerDatabase(values)
        outputs = set()
        for i, factory in enumerate(
            (
                lambda ctx: SelectedSumProtocol(ctx),
                lambda ctx: BatchedSelectedSumProtocol(ctx, batch_size=7),
                lambda ctx: PreprocessedSelectedSumProtocol(ctx),
                lambda ctx: CombinedSelectedSumProtocol(ctx, batch_size=5),
                lambda ctx: MultiClientSelectedSumProtocol(ctx, num_clients=2),
            )
        ):
            ctx = ExecutionContext(rng="variant-%d-%d" % (i, n))
            outputs.add(factory(ctx).run(database, bits).value)
        assert len(outputs) == 1


class TestComposition:
    @settings(max_examples=10, deadline=None)
    @given(st.data())
    def test_grouped_equals_per_group_runs(self, data):
        n = data.draw(st.integers(2, 40))
        g = data.draw(st.integers(1, 4))
        values = data.draw(
            st.lists(st.integers(0, 2**16 - 1), min_size=n, max_size=n)
        )
        groups = data.draw(
            st.lists(
                st.one_of(st.none(), st.integers(0, g - 1)),
                min_size=n,
                max_size=n,
            )
        )
        database = ServerDatabase(values, value_bits=16)
        grouped = GroupedSumProtocol(
            ExecutionContext(rng="grp%d" % n)
        ).run_grouped(database, groups, num_groups=g)
        for j in range(g):
            selection = [1 if gr == j else 0 for gr in groups]
            assert grouped[j] == run_plain(database, selection, "pg%d" % j)

    @settings(max_examples=10, deadline=None)
    @given(st.data())
    def test_distributed_equals_single_server(self, data):
        sizes = data.draw(
            st.lists(st.integers(1, 25), min_size=2, max_size=4)
        )
        total_n = sum(sizes)
        values = data.draw(
            st.lists(st.integers(0, 999), min_size=total_n, max_size=total_n)
        )
        bits = data.draw(
            st.lists(st.integers(0, 1), min_size=total_n, max_size=total_n)
        )
        combined = ServerDatabase(values)
        partitions = []
        offset = 0
        for size in sizes:
            partitions.append(ServerDatabase(values[offset : offset + size]))
            offset += size
        single = run_plain(combined, bits, "single")
        distributed = DistributedSelectedSumProtocol(
            ExecutionContext(rng="dist")
        ).run_distributed(partitions, bits)
        assert distributed.value == single

    def test_sum_invariant_under_key_size(self):
        generator = WorkloadGenerator("keysize")
        database = generator.database(100)
        selection = generator.random_selection(100, 30)
        values = {
            SelectedSumProtocol(
                ExecutionContext(key_bits=bits, rng="k%d" % bits)
            ).run(database, selection).value
            for bits in (256, 512, 1024)
        }
        assert len(values) == 1
