"""Integration tests: the crypto kernel engine under every protocol layer.

The acceptance bar for the engine is behavioural equivalence: every
protocol variant must decrypt to the same sums with an engine-backed
scheme as without one, seeded runs must be deterministic across worker
counts, and a server handed an engine must aggregate correctly and shut
the engine down on drain.
"""

import pytest

from repro.crypto.engine import CryptoEngine
from repro.crypto.paillier import PaillierScheme
from repro.crypto.rng import DeterministicRandom
from repro.datastore.workload import WorkloadGenerator
from repro.net.server import SpfeServer
from repro.net.transport import SocketTransport
from repro.spfe.batching import BatchedSelectedSumProtocol
from repro.spfe.combined import CombinedSelectedSumProtocol
from repro.spfe.context import ExecutionContext
from repro.spfe.grouped import GroupedSumProtocol
from repro.spfe.multiclient import MultiClientSelectedSumProtocol
from repro.spfe.preprocessing import PreprocessedSelectedSumProtocol
from repro.spfe.selected_sum import SelectedSumProtocol
from repro.spfe.session import (
    ClientSession,
    ServerSession,
    run_resilient,
    run_sessions_in_memory,
)

KEY_BITS = 128
N = 24
READ_TIMEOUT = 5.0


@pytest.fixture(scope="module")
def workload():
    generator = WorkloadGenerator("engine-protocols")
    database = generator.database(N, value_bits=16)
    selection = generator.random_selection(N, 8)
    return database, selection


def engine_context(engine, seed):
    return ExecutionContext(
        scheme=PaillierScheme(engine=engine),
        key_bits=KEY_BITS,
        mode="measured",
        rng=seed,
    )


VARIANTS = [
    ("plain", lambda ctx, eng: SelectedSumProtocol(ctx)),
    ("batched", lambda ctx, eng: BatchedSelectedSumProtocol(ctx, batch_size=5)),
    (
        "preprocessed",
        lambda ctx, eng: PreprocessedSelectedSumProtocol(ctx, engine=eng),
    ),
    ("combined", lambda ctx, eng: CombinedSelectedSumProtocol(ctx, batch_size=5)),
    (
        "multiclient",
        lambda ctx, eng: MultiClientSelectedSumProtocol(ctx, num_clients=2),
    ),
]


class TestEngineBackedVariants:
    @pytest.mark.parametrize("name,build", VARIANTS, ids=[v[0] for v in VARIANTS])
    def test_variant_correct_under_engine(self, workload, name, build):
        database, selection = workload
        with CryptoEngine(workers=2, chunk_size=8) as engine:
            ctx = engine_context(engine, "ev-%s" % name)
            result = build(ctx, engine).run(database, selection)
        assert result.value == database.select_sum(selection)

    @pytest.mark.parametrize("name,build", VARIANTS, ids=[v[0] for v in VARIANTS])
    def test_seeded_runs_match_across_worker_counts(self, workload, name, build):
        database, selection = workload
        values = []
        for workers in (1, 3):
            with CryptoEngine(workers=workers, chunk_size=8) as engine:
                ctx = engine_context(engine, "det-%s" % name)
                values.append(build(ctx, engine).run(database, selection).value)
        assert values[0] == values[1] == database.select_sum(selection)

    def test_grouped_protocol_under_engine(self, workload):
        database, _ = workload
        groups = [i % 3 for i in range(len(database))]
        with CryptoEngine(workers=2, chunk_size=8) as engine:
            ctx = engine_context(engine, "grouped")
            result = GroupedSumProtocol(ctx).run_grouped(database, groups)
        expected = [0, 0, 0]
        for value, group in zip(database.values, groups):
            expected[group] += value
        assert result.group_sums == expected

    def test_fixed_base_engine_variant(self, workload):
        database, selection = workload
        with CryptoEngine(workers=1, fixed_base=True, chunk_size=8) as engine:
            ctx = engine_context(engine, "fixed-base")
            result = SelectedSumProtocol(ctx).run(database, selection)
        assert result.value == database.select_sum(selection)


class TestEngineSessions:
    def test_server_session_folds_through_engine(self, workload):
        database, selection = workload
        with CryptoEngine(workers=1, chunk_size=4) as engine:
            client = ClientSession(
                selection,
                key_bits=KEY_BITS,
                chunk_size=4,
                rng=DeterministicRandom("session-engine"),
            )
            server = ServerSession(database, engine=engine)
            value = run_sessions_in_memory(client, server)
        assert value == database.select_sum(selection)

    def test_session_aggregate_matches_engineless(self, workload):
        database, selection = workload
        values = []
        for engine in (None, CryptoEngine(workers=1, chunk_size=4)):
            client = ClientSession(
                selection,
                key_bits=KEY_BITS,
                chunk_size=4,
                rng=DeterministicRandom("session-same"),
            )
            values.append(
                run_sessions_in_memory(
                    client, ServerSession(database, engine=engine)
                )
            )
            if engine is not None:
                engine.close()
        assert values[0] == values[1] == database.select_sum(selection)


class TestEngineServer:
    def test_server_serves_and_closes_engine_on_drain(self, workload):
        database, selection = workload
        engine = CryptoEngine(workers=2, chunk_size=8)
        server = SpfeServer(
            database, read_timeout=READ_TIMEOUT, engine=engine
        ).start()
        try:
            client = ClientSession(
                selection,
                key_bits=KEY_BITS,
                chunk_size=4,
                rng=DeterministicRandom("server-engine"),
            )
            value = run_resilient(
                client,
                lambda: SocketTransport.connect(
                    "127.0.0.1",
                    server.port,
                    connect_timeout=READ_TIMEOUT,
                    read_timeout=READ_TIMEOUT,
                ),
            )
            assert value == database.select_sum(selection)
        finally:
            server.stop(drain_deadline_s=5.0)
        assert engine.closed
