"""Concurrent-server integration suite: the ISSUE acceptance scenarios.

One server — each test runs against *both* connection front-ends, the
threaded :class:`~repro.net.server.SpfeServer` and the event-loop
:class:`~repro.net.aio.AsyncSpfeServer`, via the ``make_server``
fixture — faces a fleet of threaded clients — honest, malicious, slow,
and silent — over real kernel sockets.  The suite asserts the hardening
properties end to end:

* a mixed fleet never corrupts an honest answer: every honest client
  decrypts the exact selected sum while malicious peers get typed
  errors and silent peers are dropped;
* a malformed-frame corpus exercises every trust-boundary reject path
  (hello policy, public-key sanity, ciphertext membership, frame cap,
  session byte quota) and the server keeps serving afterwards;
* with the pool saturated, surplus clients receive BUSY and retry to
  completion through :func:`run_resilient`;
* SIGTERM during active sessions drains them to completion;
* at drain, the outcome counters reconcile:
  ``served + dropped + rejected == admitted``.
"""

import os
import select
import signal
import socket
import threading
import time

import pytest

from repro.crypto.paillier import generate_keypair
from repro.crypto.rng import DeterministicRandom
from repro.datastore.workload import WorkloadGenerator
from repro.exceptions import ReproError, ValidationError
from repro.net import codec
from repro.net.codec import FrameDecoder, FrameType
from repro.net.transport import RetryPolicy, SocketTransport
from repro.spfe.session import ClientSession, run_over_transport, run_resilient
from repro.spfe.validation import ServerPolicy

KEY_BITS = 128
N = 16
CHUNK = 4
READ_TIMEOUT = 5.0
JOIN_TIMEOUT = 20.0

pytestmark = pytest.mark.chaos

POLICY = ServerPolicy(
    min_key_bits=64,
    max_key_bits=256,
    max_chunks=8,
    max_frame_payload=2048,
)


@pytest.fixture(scope="module")
def workload():
    generator = WorkloadGenerator("concurrent-server")
    database = generator.database(N, value_bits=16)
    selection = generator.random_selection(N, 5)
    keypair = generate_keypair(KEY_BITS, DeterministicRandom("cs-keypair"))
    return database, selection, database.select_sum(selection), keypair


def make_client(selection, seed):
    return ClientSession(
        selection,
        key_bits=KEY_BITS,
        chunk_size=CHUNK,
        rng=DeterministicRandom("cs-client-%s" % seed),
    )


def connect(port, read_timeout=READ_TIMEOUT):
    return SocketTransport.connect(
        "127.0.0.1", port, connect_timeout=READ_TIMEOUT, read_timeout=read_timeout
    )


def read_error_frame(sock, timeout=READ_TIMEOUT):
    """Read frames off a raw socket until an ERROR arrives (or EOF)."""
    sock.settimeout(timeout)
    decoder = FrameDecoder()
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            data = sock.recv(4096)
        except socket.timeout:
            return None
        if not data:
            return None
        decoder.feed(data)
        for frame in decoder.frames():
            if frame.frame_type == FrameType.ERROR:
                return frame
    return None


def wait_for(predicate, timeout=JOIN_TIMEOUT):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


# -- mixed fleet --------------------------------------------------------------


class TestMixedFleet:
    def test_honest_malicious_and_silent_clients(self, workload, make_server):
        """Four honest, two malicious, one silent client, concurrently.

        Every honest client gets the exact sum; each malicious client is
        rejected with a typed validation error; the silent one is
        dropped on deadline — and none of it disturbs the others.
        """
        database, selection, expected, keypair = workload
        server = make_server(
            database,
            policy=POLICY,
            max_sessions=4,
            accept_backlog=8,
            read_timeout=2.0,
        ).start()
        port = server.port
        results = {}
        lock = threading.Lock()

        def honest(tag):
            client = make_client(selection, tag)
            try:
                value = run_resilient(
                    client,
                    lambda: connect(port),
                    policy=RetryPolicy(max_attempts=8, base_delay_s=0.2),
                )
            except ReproError as exc:  # pragma: no cover - failure detail
                value = exc
            with lock:
                results[tag] = value

        def malicious(tag, frames):
            sock = socket.create_connection(("127.0.0.1", port), timeout=5.0)
            try:
                for data in frames:
                    sock.sendall(data)
                frame = read_error_frame(sock)
                with lock:
                    results[tag] = (
                        codec.decode_error(frame.payload)[0]
                        if frame is not None
                        else None
                    )
            finally:
                sock.close()

        public = keypair.public
        honest_ct = public.encrypt_raw(1, DeterministicRandom("mixed-ct"))
        sid = b"\7" * codec.SESSION_ID_BYTES
        bad_key_frames = [codec.encode_hello(512, N, CHUNK, sid, 0)]
        bad_ct_frames = [
            codec.encode_hello(KEY_BITS, N, CHUNK, sid, 0),
            codec.encode_public_key(public.n, KEY_BITS, 0),
            codec.encode_ciphertext_chunk(
                [honest_ct, public.n, honest_ct, honest_ct], KEY_BITS, 0
            ),
        ]

        silent = socket.create_connection(("127.0.0.1", port), timeout=5.0)
        threads = [
            threading.Thread(target=honest, args=("h%d" % i,)) for i in range(4)
        ]
        threads.append(
            threading.Thread(target=malicious, args=("bad-key", bad_key_frames))
        )
        threads.append(
            threading.Thread(target=malicious, args=("bad-ct", bad_ct_frames))
        )
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=JOIN_TIMEOUT)
                assert not thread.is_alive(), "client thread hung"
            for i in range(4):
                assert results["h%d" % i] == expected
            assert results["bad-key"] == codec.ERROR_CODE_POLICY
            assert results["bad-ct"] == codec.ERROR_CODE_VALIDATION
            assert wait_for(
                lambda: server.stats.get("sessions_dropped") >= 1
            ), "silent client never dropped"
            assert wait_for(lambda: server.stats.get("sessions_served") == 4)
            assert server.stats.get("sessions_rejected") == 2
            assert server.stats.get("validation_rejections") == 2
        finally:
            silent.close()
            server.stop(drain_deadline_s=10.0)


# -- malformed-frame corpus ---------------------------------------------------


def corpus(workload):
    """(name, frames-to-send, expected error code) triples covering
    every validation reject path a remote peer can trigger."""
    _, __, ___, keypair = workload
    public = keypair.public
    sid = b"\5" * codec.SESSION_ID_BYTES
    hello = codec.encode_hello(KEY_BITS, N, CHUNK, sid, 0)
    pk = codec.encode_public_key(public.n, KEY_BITS, 0)
    rng = DeterministicRandom("corpus-ct")
    good = public.encrypt_raw(1, rng)

    def chunk(values):
        return codec.encode_ciphertext_chunk(values, KEY_BITS, 0)

    return [
        ("hello-zero-chunk-size",
         [codec.encode_hello(KEY_BITS, N, 0, sid, 0)],
         codec.ERROR_CODE_VALIDATION),
        ("hello-key-below-policy",
         [codec.encode_hello(32, N, CHUNK, sid, 0)],
         codec.ERROR_CODE_POLICY),
        ("hello-key-above-policy",
         [codec.encode_hello(512, N, CHUNK, sid, 0)],
         codec.ERROR_CODE_POLICY),
        ("hello-too-many-chunks",
         [codec.encode_hello(KEY_BITS, N, 1, sid, 0)],  # 16 chunks > 8
         codec.ERROR_CODE_POLICY),
        ("key-even-modulus",
         [hello, codec.encode_public_key(1 << (KEY_BITS - 1), KEY_BITS, 0)],
         codec.ERROR_CODE_VALIDATION),
        ("key-larger-than-announced",
         [codec.encode_hello(KEY_BITS - 7, N, CHUNK, sid, 0), pk],
         codec.ERROR_CODE_PROTOCOL),
        ("key-far-below-announced",
         [codec.encode_hello(256, N, CHUNK, sid, 0),
          codec.encode_public_key(public.n, 256, 0)],
         codec.ERROR_CODE_VALIDATION),
        ("ciphertext-zero",
         [hello, pk, chunk([0, good, good, good])],
         codec.ERROR_CODE_VALIDATION),
        ("ciphertext-shares-factor",
         [hello, pk, chunk([good, public.n, good, good])],
         codec.ERROR_CODE_VALIDATION),
        ("ciphertext-out-of-range",
         [hello, pk, chunk([good, good, public.nsquare, good])],
         codec.ERROR_CODE_VALIDATION),
        ("frame-above-payload-cap",
         [codec.encode_frame(FrameType.ENC_CHUNK, b"\1" * 4096, 0)],
         codec.ERROR_CODE_PROTOCOL),
    ]


class TestMalformedFrameCorpus:
    def test_every_reject_path_is_typed_and_survivable(
        self, workload, make_server
    ):
        """Each corpus entry earns its typed ERROR; the server then
        serves an honest client as if nothing happened."""
        database, selection, expected, _ = workload
        server = make_server(
            database, policy=POLICY, max_sessions=2, read_timeout=READ_TIMEOUT
        ).start()
        try:
            for name, frames, want_code in corpus(workload):
                sock = socket.create_connection(
                    ("127.0.0.1", server.port), timeout=5.0
                )
                try:
                    for data in frames:
                        sock.sendall(data)
                    frame = read_error_frame(sock)
                    assert frame is not None, "%s: no ERROR frame" % name
                    code, message = codec.decode_error(frame.payload)
                    assert code == want_code, (name, code, message)
                finally:
                    sock.close()
            # Garbage that is not a frame at all must not wedge the
            # server either (typed error or straight close are both
            # acceptable).
            sock = socket.create_connection(
                ("127.0.0.1", server.port), timeout=5.0
            )
            try:
                sock.sendall(b"\xff" * 64)
                read_error_frame(sock, timeout=2.0)
            finally:
                sock.close()
            # The server is still healthy: honest query round-trips.
            client = make_client(selection, "post-corpus")
            value = run_resilient(client, lambda: connect(server.port))
            assert value == expected
            assert wait_for(lambda: server.stats.get("sessions_served") == 1)
        finally:
            server.stop(drain_deadline_s=10.0)

    def test_session_byte_quota_is_enforced(self, workload, make_server):
        """A peer streaming more bytes than the per-session quota gets a
        typed POLICY error even though every individual frame is valid."""
        database, _, __, keypair = workload
        quota_policy = ServerPolicy(
            min_key_bits=64,
            max_key_bits=256,
            max_frame_payload=192,
            max_session_bytes=192,
        )
        server = make_server(
            database, policy=quota_policy, read_timeout=READ_TIMEOUT
        ).start()
        try:
            public = keypair.public
            good = public.encrypt_raw(1, DeterministicRandom("quota-ct"))
            sock = socket.create_connection(
                ("127.0.0.1", server.port), timeout=5.0
            )
            try:
                sid = b"\6" * codec.SESSION_ID_BYTES
                sock.sendall(codec.encode_hello(KEY_BITS, N, CHUNK, sid, 0))
                sock.sendall(codec.encode_public_key(public.n, KEY_BITS, 0))
                for index in range(N // CHUNK):
                    try:
                        sock.sendall(
                            codec.encode_ciphertext_chunk(
                                [good] * CHUNK, KEY_BITS, index
                            )
                        )
                    except OSError:
                        break  # server already rejected and closed
                    # Stop streaming the moment the rejection lands, so
                    # a late write cannot RST away the ERROR frame.
                    if select.select([sock], [], [], 0.5)[0]:
                        break
                frame = read_error_frame(sock)
                assert frame is not None, "quota overrun produced no ERROR"
                code, message = codec.decode_error(frame.payload)
                assert code == codec.ERROR_CODE_POLICY, message
                assert "quota" in message or "bytes" in message
            finally:
                sock.close()
        finally:
            server.stop(drain_deadline_s=10.0)


# -- load shedding ------------------------------------------------------------


class TestBusyRetry:
    def test_shed_client_retries_to_completion(self, workload, make_server):
        """Acceptance: with the pool saturated, the surplus client gets
        BUSY and, through run_resilient's retry loop, still finishes
        with the exact answer once capacity frees up."""
        database, selection, expected, _ = workload
        server = make_server(
            database,
            policy=POLICY,
            max_sessions=1,
            accept_backlog=1,
            read_timeout=1.0,
        ).start()
        port = server.port
        holders = []
        try:
            # Occupy the lone worker and the single queue slot with
            # silent connections; they die on the read deadline, which
            # is exactly the window the surplus client must ride out.
            for _ in range(2):
                holders.append(
                    socket.create_connection(("127.0.0.1", port), timeout=5.0)
                )
                time.sleep(0.1)
            client = make_client(selection, "shed-retry")
            value = run_resilient(
                client,
                lambda: connect(port, read_timeout=3.0),
                policy=RetryPolicy(max_attempts=10, base_delay_s=0.3),
            )
            assert value == expected
            assert server.stats.get("sessions_shed") >= 1
            assert wait_for(lambda: server.stats.get("sessions_served") == 1)
        finally:
            for sock in holders:
                try:
                    sock.close()
                except OSError:
                    pass
            server.stop(drain_deadline_s=10.0)


# -- graceful drain -----------------------------------------------------------


class _SlowTransport:
    """Transport wrapper that drips writes, keeping a session active
    long enough for a signal to land mid-query."""

    def __init__(self, inner, delay_s):
        self._inner = inner
        self._delay_s = delay_s

    def send(self, data):
        time.sleep(self._delay_s)
        self._inner.send(data)

    def recv(self, max_bytes=65536):
        return self._inner.recv(max_bytes)

    def recv_ready(self):
        return self._inner.recv_ready()

    def close(self):
        self._inner.close()


class TestSignalDrain:
    def test_sigterm_drains_active_session_to_completion(
        self, workload, make_server
    ):
        """Acceptance: SIGTERM while a query is in flight stops the
        accept loop but lets the in-flight session finish; the client
        still gets the exact answer."""
        database, selection, expected, _ = workload
        server = make_server(
            database, policy=POLICY, read_timeout=READ_TIMEOUT
        ).start()
        restore = server.install_signal_handlers()
        results = {}

        def slow_client():
            client = make_client(selection, "sigterm")
            transport = _SlowTransport(connect(server.port), delay_s=0.15)
            try:
                results["value"] = run_over_transport(client, transport)
            except ReproError as exc:  # pragma: no cover - failure detail
                results["value"] = exc
            finally:
                transport.close()

        thread = threading.Thread(target=slow_client)
        try:
            thread.start()
            assert wait_for(
                lambda: server.stats.get("connections_accepted") >= 1
            ), "client never reached the server"
            os.kill(os.getpid(), signal.SIGTERM)
            # wait() polls on the main thread, so the handler fires here
            # and flips the server into drain.
            server.wait(drain_deadline_s=15.0)
            assert server.stopped
            thread.join(timeout=JOIN_TIMEOUT)
            assert not thread.is_alive(), "client hung past drain"
            assert results["value"] == expected
            assert server.stats.get("sessions_served") == 1
            assert server.stats.get("sessions_dropped") == 0
            # Drained means drained: no new connections.
            with pytest.raises(OSError):
                socket.create_connection(
                    ("127.0.0.1", server.port), timeout=1.0
                )
        finally:
            restore()
            server.stop(drain_deadline_s=5.0)

    def test_validation_error_is_a_typed_repro_error(self):
        # Guard for the fleet test's malicious branch: the wire-level
        # code constants map back onto the exception hierarchy.
        assert issubclass(ValidationError, ReproError)


# -- outcome accounting -------------------------------------------------------


class TestOutcomeInvariant:
    def test_served_dropped_rejected_reconcile_with_admitted(
        self, workload, make_server
    ):
        """At drain, every admitted session is in exactly one outcome
        bucket: ``served + dropped + rejected == admitted``, in-flight
        zero.  Drives all three outcome classes concurrently — honest
        (served), malicious (rejected), silent (dropped on deadline) —
        on both backends; a session that slips between counters (the
        vanished-outcome family of bugs) breaks the equality.
        """
        database, selection, expected, _ = workload
        server = make_server(
            database,
            policy=POLICY,
            max_sessions=3,
            accept_backlog=8,
            read_timeout=1.0,
        ).start()
        port = server.port
        results = {}
        lock = threading.Lock()

        def honest(tag):
            client = make_client(selection, "inv-%s" % tag)
            value = run_resilient(
                client,
                lambda: connect(port),
                policy=RetryPolicy(max_attempts=8, base_delay_s=0.2),
            )
            with lock:
                results[tag] = value

        silent = socket.create_connection(("127.0.0.1", port), timeout=5.0)
        malicious = socket.create_connection(("127.0.0.1", port), timeout=5.0)
        threads = [
            threading.Thread(target=honest, args=("h%d" % i,))
            for i in range(3)
        ]
        try:
            sid = b"\3" * codec.SESSION_ID_BYTES
            malicious.sendall(codec.encode_hello(512, N, CHUNK, sid, 0))
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=JOIN_TIMEOUT)
                assert not thread.is_alive(), "client thread hung"
            for i in range(3):
                assert results["h%d" % i] == expected
            # the silent client dies on its read deadline
            assert wait_for(
                lambda: server.stats.get("sessions_dropped") >= 1
            ), "silent client never dropped"
        finally:
            silent.close()
            malicious.close()
            server.stop(drain_deadline_s=10.0)
        snap = server.stats.snapshot()
        assert snap["sessions_served"] == 3
        assert snap["sessions_rejected"] == 1
        assert snap["sessions_dropped"] >= 1
        assert (
            snap["sessions_served"]
            + snap["sessions_dropped"]
            + snap["sessions_rejected"]
            == snap["sessions_admitted"]
        ), snap
        assert server._core.in_flight() == 0
