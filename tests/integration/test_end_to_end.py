"""Integration tests: whole-system runs across layer boundaries.

These are the slow-but-load-bearing tests: real 512-bit Paillier (the
paper's key size), every protocol variant against every scheme, and the
modelled/measured consistency checks that justify the benches.
"""

import pytest

from repro.crypto.elgamal import ExponentialElGamalScheme
from repro.crypto.paillier import PaillierScheme
from repro.crypto.simulated import SimulatedPaillier
from repro.datastore.database import ServerDatabase
from repro.datastore.workload import WorkloadGenerator
from repro.experiments.environments import long_distance, short_distance
from repro.spfe.batching import BatchedSelectedSumProtocol
from repro.spfe.combined import CombinedSelectedSumProtocol
from repro.spfe.context import ExecutionContext
from repro.spfe.multiclient import MultiClientSelectedSumProtocol
from repro.spfe.preprocessing import PreprocessedSelectedSumProtocol
from repro.spfe.selected_sum import SelectedSumProtocol
from repro.spfe.statistics import PrivateStatisticsClient


ALL_VARIANTS = [
    lambda ctx: SelectedSumProtocol(ctx),
    lambda ctx: BatchedSelectedSumProtocol(ctx, batch_size=10),
    lambda ctx: PreprocessedSelectedSumProtocol(ctx),
    lambda ctx: CombinedSelectedSumProtocol(ctx, batch_size=10),
    lambda ctx: MultiClientSelectedSumProtocol(ctx, num_clients=2),
]


class TestPaperKeySize:
    """One full run at the paper's exact parameters (512-bit Paillier)."""

    def test_plain_protocol_512_bits(self):
        generator = WorkloadGenerator("e2e-512")
        database = generator.database(40)  # 32-bit values, real crypto
        selection = generator.random_selection(40, 10)
        ctx = ExecutionContext(
            scheme=PaillierScheme(), key_bits=512, mode="measured", rng="e2e"
        )
        result = SelectedSumProtocol(ctx).run(database, selection)
        assert result.value == database.select_sum(selection)
        assert result.bytes_up == 72 + 40 * 136  # the paper's wire sizes

    def test_statistics_512_bits(self):
        generator = WorkloadGenerator("e2e-stats")
        database = generator.database(30, value_bits=16)
        selection = generator.random_selection(30, 12)
        ctx = ExecutionContext(
            scheme=PaillierScheme(), key_bits=512, mode="measured", rng="st"
        )
        stats = PrivateStatisticsClient(ctx)
        import numpy as np

        mask = np.array(selection, dtype=bool)
        values = np.array(database.values, dtype=float)[mask]
        assert stats.mean(database, selection).value == pytest.approx(values.mean())
        assert stats.variance(database, selection).value == pytest.approx(
            values.var()
        )


class TestEveryVariantEveryScheme:
    @pytest.mark.parametrize("variant_index", range(len(ALL_VARIANTS)))
    def test_real_paillier(self, variant_index):
        generator = WorkloadGenerator("vx-%d" % variant_index)
        database = generator.database(20, value_bits=16)
        selection = generator.random_selection(20, 6)
        ctx = ExecutionContext(
            scheme=PaillierScheme(), key_bits=192, mode="measured",
            rng="vx-%d" % variant_index,
        )
        result = ALL_VARIANTS[variant_index](ctx).run(database, selection)
        assert result.value == database.select_sum(selection)

    @pytest.mark.parametrize("variant_index", range(len(ALL_VARIANTS)))
    def test_simulated_scheme(self, variant_index):
        generator = WorkloadGenerator("vs-%d" % variant_index)
        database = generator.database(20, value_bits=16)
        selection = generator.random_selection(20, 6)
        ctx = ExecutionContext(rng="vs-%d" % variant_index)
        result = ALL_VARIANTS[variant_index](ctx).run(database, selection)
        assert result.value == database.select_sum(selection)

    def test_exponential_elgamal_small_sums(self):
        """The ablation scheme works for small sums (and only those)."""
        database = ServerDatabase([3, 1, 4, 1, 5, 9, 2, 6], value_bits=8)
        selection = [1, 0, 1, 1, 0, 1, 0, 1]
        scheme = ExponentialElGamalScheme(max_plaintext=10_000)
        ctx = ExecutionContext(
            scheme=scheme, key_bits=128, mode="measured", rng="eg"
        )
        result = SelectedSumProtocol(ctx).run(database, selection)
        assert result.value == database.select_sum(selection)


class TestModelledMeasuredConsistency:
    """The substitution argument (DESIGN.md §3): the same protocol run
    under the simulated scheme and under real Paillier must produce the
    same value, the same byte counts, and the same message counts —
    only the timing source differs."""

    @pytest.mark.parametrize("factory", ALL_VARIANTS)
    def test_transcript_structure_identical(self, factory):
        generator = WorkloadGenerator("consistency")
        database = generator.database(24, value_bits=16)
        selection = generator.random_selection(24, 8)

        modelled = factory(
            ExecutionContext(scheme=SimulatedPaillier("m"), key_bits=192, rng="c1")
        ).run(database, selection)
        measured = factory(
            ExecutionContext(
                scheme=PaillierScheme(), key_bits=192, mode="measured", rng="c2"
            )
        ).run(database, selection)

        assert modelled.value == measured.value == database.select_sum(selection)
        assert modelled.bytes_up == measured.bytes_up
        assert modelled.bytes_down == measured.bytes_down
        assert modelled.messages == measured.messages


class TestEnvironmentsEndToEnd:
    def test_both_paper_environments(self):
        generator = WorkloadGenerator("envs")
        database = generator.database(500)
        selection = generator.random_selection(500, 20)
        short = SelectedSumProtocol(short_distance.context(seed="a")).run(
            database, selection
        )
        long_ = SelectedSumProtocol(long_distance.context(seed="b")).run(
            database, selection
        )
        assert short.value == long_.value == database.select_sum(selection)
        # Long distance: slower client (4x) and much slower link.
        assert long_.breakdown.client_encrypt_s == pytest.approx(
            4 * short.breakdown.client_encrypt_s
        )
        assert long_.breakdown.communication_s > 20 * short.breakdown.communication_s

    def test_key_reuse_across_queries(self):
        """A client amortizes key generation over many queries."""
        generator = WorkloadGenerator("reuse")
        database = generator.database(100)
        ctx = ExecutionContext(rng="reuse")
        keypair, _ = ctx.generate_keypair()
        results = []
        for i in range(3):
            selection = generator.random_selection(100, 10 + i)
            result = SelectedSumProtocol(ctx).run(
                database, selection, keypair=keypair
            )
            result.verify(database.select_sum(selection))
            results.append(result)
        assert all(r.metadata["keygen_s"] == 0.0 for r in results)
