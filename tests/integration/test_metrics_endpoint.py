"""End-to-end: the scraped ``/metrics`` page agrees with ``ServerStats``.

Boots a real :class:`~repro.net.server.SpfeServer` with its stats
endpoint enabled, drives a served session *and* an internal-error
session over genuine sockets, then scrapes ``/metrics`` and asserts the
exposition reconciles exactly with :meth:`ServerStats.snapshot` — the
single-bookkeeping-path property the observability layer exists for.
The internal-error path is the interesting half: before the accounting
fix, a session that died on a server-side bug vanished from the byte
totals, so the scrape and the in-process numbers could not agree.
"""

import json
import socket
import time

import pytest

from repro.crypto.rng import DeterministicRandom
from repro.datastore.workload import WorkloadGenerator
from repro.exceptions import ParameterError
from repro.net.server import SpfeServer
from repro.net.transport import SocketTransport
from repro.obs.check import scrape, validate_exposition
from repro.spfe.session import ClientSession, ServerSession, run_resilient

KEY_BITS = 128
N = 20
READ_TIMEOUT = 5.0


@pytest.fixture(scope="module")
def workload():
    generator = WorkloadGenerator("metrics-endpoint-tests")
    database = generator.database(N, value_bits=16)
    selection = generator.random_selection(N, 6)
    return database, selection


def make_client(selection, seed):
    return ClientSession(
        selection,
        key_bits=KEY_BITS,
        chunk_size=4,
        rng=DeterministicRandom("metrics-test-%s" % seed),
    )


def stats_url(server, path):
    host, port = server.stats_address
    return "http://%s:%d%s" % (host, port, path)


def wait_until(condition, timeout_s=5.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if condition():
            return True
        time.sleep(0.02)
    return condition()


def metric_samples(text):
    """Parse sample lines into ``{"name{labels}": float_value}``."""
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        samples[name] = float(value)
    return samples


class TestScrapeReconciliation:
    def test_metrics_match_server_stats_exactly(self, workload, monkeypatch):
        database, selection = workload
        original = ServerSession.receive_bytes
        fired = []

        def exploding(self, data):
            reply = original(self, data)
            if fired == ["armed"]:
                fired[:] = ["fired"]
                raise RuntimeError("injected mid-session bug")
            return reply

        monkeypatch.setattr(ServerSession, "receive_bytes", exploding)
        with SpfeServer(
            database, read_timeout=READ_TIMEOUT, stats_port=0
        ) as server:
            # one session served to completion...
            value = run_resilient(
                make_client(selection, "served"),
                lambda: SocketTransport.connect(
                    "127.0.0.1", server.port,
                    connect_timeout=READ_TIMEOUT, read_timeout=READ_TIMEOUT,
                ),
            )
            assert value == database.select_sum(selection)
            # ...and one killed mid-run by a server-side bug
            fired.append("armed")
            crash = socket.create_connection(("127.0.0.1", server.port))
            for data in make_client(selection, "crash").initial_bytes():
                crash.sendall(data)
                break  # the first frame already triggers the bug
            assert wait_until(
                lambda: server.stats.get("sessions_errored_internal") == 1
            )
            crash.close()
            assert wait_until(
                lambda: server._health()["in_flight_sessions"] == 0
            )

            status, body = scrape(stats_url(server, "/metrics"))
            assert status == 200
            assert validate_exposition(body) == []
            samples = metric_samples(body)
            snapshot = server.stats.snapshot()

            # every ServerStats field reconciles exactly with its scrape
            for field, count in snapshot.items():
                name = "repro_server_%s_total" % field
                assert samples[name] == count, field
            assert snapshot["sessions_served"] == 1
            assert snapshot["sessions_errored_internal"] == 1
            assert snapshot["sessions_dropped"] >= 1
            assert snapshot["bytes_in"] > 0  # includes the crashed session
            assert samples["repro_server_in_flight_sessions"] == 0
            assert samples["repro_server_active_connections"] == 0
            # the served session's fold latency reached the phase histogram
            assert samples['repro_phase_seconds_count{phase="fold"}'] >= 1

            # the JSON rendering carries the same counter values
            status, body = scrape(stats_url(server, "/metrics.json"))
            assert status == 200
            by_name = {
                (entry["name"], tuple(sorted(entry["labels"].items()))): entry
                for entry in json.loads(body)["metrics"]
            }
            for field, count in snapshot.items():
                entry = by_name[("repro_server_%s_total" % field, ())]
                assert entry["value"] == count

    def test_healthz_tracks_server_lifecycle(self, workload):
        database, _ = workload
        server = SpfeServer(
            database, read_timeout=READ_TIMEOUT, stats_port=0
        ).start()
        try:
            status, body = scrape(stats_url(server, "/healthz"))
            document = json.loads(body)
            assert status == 200
            assert document["status"] == "ok"
            assert document["in_flight_sessions"] == 0
            assert document["workers_alive"] == server.max_sessions
            server.initiate_drain()
            status, body = scrape(stats_url(server, "/healthz"))
            assert status == 503
            assert json.loads(body)["status"] == "draining"
        finally:
            server.stop(drain_deadline_s=5.0)

    def test_stats_address_requires_opt_in(self, workload):
        database, _ = workload
        with SpfeServer(database, read_timeout=READ_TIMEOUT) as server:
            with pytest.raises(ParameterError):
                server.stats_address
