"""Fault injection: corrupt streams, broken peers, resource exhaustion.

The protocol's security model is semi-honest (both parties follow the
protocol), but a production implementation must still *fail loudly* on
malformed input rather than return silently wrong sums.  These tests
attack the byte-level session layer and the in-process engine with the
failure modes a deployment actually sees.
"""

import pytest

from repro.crypto.rng import DeterministicRandom
from repro.datastore.database import ServerDatabase
from repro.datastore.workload import WorkloadGenerator
from repro.exceptions import ChannelError, ProtocolError
from repro.net import codec
from repro.net.codec import FrameDecoder, FrameType
from repro.spfe.context import ExecutionContext
from repro.spfe.session import ClientSession, ServerSession


@pytest.fixture()
def session_pair():
    generator = WorkloadGenerator("faults")
    database = generator.database(30, value_bits=16)
    selection = generator.random_selection(30, 8)
    client = ClientSession(
        selection, key_bits=128, chunk_size=10, rng=DeterministicRandom("f")
    )
    return database, selection, client


def error_frame_of(reply):
    decoder = FrameDecoder()
    decoder.feed(reply)
    frame = next(decoder.frames())
    return frame if frame.frame_type == FrameType.ERROR else None


class TestCorruptStreams:
    def test_flipped_header_byte(self, session_pair):
        database, _, client = session_pair
        server = ServerSession(database)
        stream = b"".join(client.initial_bytes())
        corrupted = bytes([stream[0] ^ 0xFF]) + stream[1:]
        reply = server.receive_bytes(corrupted)
        assert error_frame_of(reply) is not None
        assert not server.finished

    def test_truncated_stream_never_finishes(self, session_pair):
        database, _, client = session_pair
        server = ServerSession(database)
        stream = b"".join(client.initial_bytes())
        server.receive_bytes(stream[: len(stream) // 2])
        assert not server.finished  # waits, does not crash or guess

    def test_frames_out_of_order(self, session_pair):
        database, _, client = session_pair
        server = ServerSession(database)
        stream = list(client.initial_bytes())
        # Send a chunk before HELLO.
        reply = server.receive_bytes(stream[2])
        assert error_frame_of(reply) is not None

    def test_duplicate_hello(self, session_pair):
        database, _, client = session_pair
        server = ServerSession(database)
        hello = next(client.initial_bytes())
        assert server.receive_bytes(hello) == b""
        reply = server.receive_bytes(hello)  # HELLO again: now expects key
        assert error_frame_of(reply) is not None

    def test_garbage_after_completion(self, session_pair):
        database, selection, client = session_pair
        server = ServerSession(database)
        for outgoing in client.initial_bytes():
            reply = server.receive_bytes(outgoing)
            if reply:
                client.receive_bytes(reply)
        assert server.finished
        reply = server.receive_bytes(codec.encode_hello(128, 30, 10))
        assert error_frame_of(reply) is not None


class TestMaliciousValues:
    def test_oversized_public_key_rejected(self, session_pair):
        database, _, client = session_pair
        server = ServerSession(database)
        server.receive_bytes(next(client.initial_bytes()))  # HELLO (128-bit)
        huge = codec.encode_public_key(2**512 + 1, 1024)
        reply = server.receive_bytes(huge)
        assert error_frame_of(reply) is not None

    def test_zero_ciphertext_rejected(self, session_pair):
        database, _, client = session_pair
        server = ServerSession(database)
        stream = list(client.initial_bytes())
        server.receive_bytes(stream[0])
        server.receive_bytes(stream[1])
        reply = server.receive_bytes(codec.encode_ciphertext_chunk([0], 128))
        assert error_frame_of(reply) is not None

    def test_tampered_result_detected_by_width(self, session_pair):
        database, _, client = session_pair
        server = ServerSession(database)
        for outgoing in client.initial_bytes():
            reply = server.receive_bytes(outgoing)
        # Truncate the result payload: the client must reject it.
        decoder = FrameDecoder()
        decoder.feed(reply)
        frame = next(decoder.frames())
        tampered = codec.encode_frame(FrameType.RESULT, frame.payload[:-1])
        with pytest.raises(ProtocolError):
            client.receive_bytes(tampered)

    def test_tampered_result_changes_value(self, session_pair):
        """Semi-honest caveat, demonstrated: a *bit-flipped* result of
        the right width decrypts to a different (wrong) value — the
        protocol offers no integrity against a malicious server, exactly
        as the paper's model states."""
        database, selection, client = session_pair
        server = ServerSession(database)
        for outgoing in client.initial_bytes():
            reply = server.receive_bytes(outgoing)
        decoder = FrameDecoder()
        decoder.feed(reply)
        frame = next(decoder.frames())
        flipped = bytearray(frame.payload)
        flipped[-1] ^= 0x01
        client.receive_bytes(codec.encode_frame(FrameType.RESULT, bytes(flipped)))
        assert client.result != database.select_sum(selection)


class TestEngineFaults:
    def test_unconsumed_messages_detected(self):
        """A protocol bug that leaves messages queued is caught by the
        channel drain check, not silently ignored."""
        from repro.net.channel import Channel
        from repro.net.link import links
        from repro.net.wire import Message

        channel = Channel(links.loopback)
        channel.client_send(Message("enc-index", object(), 136, "client"))
        with pytest.raises(ChannelError):
            channel.drain_check()

    def test_scheme_key_confusion_detected(self):
        """Ciphertexts under the wrong key are rejected, not decrypted
        into garbage."""
        from repro.crypto.simulated import SimulatedPaillier
        from repro.exceptions import KeyMismatchError

        scheme = SimulatedPaillier("kc")
        kp1 = scheme.generate(128)
        kp2 = scheme.generate(128)
        ct = scheme.encrypt(kp1.public, 5)
        with pytest.raises(KeyMismatchError):
            scheme.decrypt(kp2.private, ct)

    def test_sum_overflow_prevented_up_front(self):
        """The capacity check refuses a query whose worst case could
        wrap, instead of wrapping at runtime."""
        from repro.spfe.selected_sum import SelectedSumProtocol

        ctx = ExecutionContext(key_bits=32, rng="overflow")
        database = ServerDatabase([2**32 - 1] * 100)
        with pytest.raises(ProtocolError):
            SelectedSumProtocol(ctx).run(database, [1] * 100)


class TestBlindingStatistics:
    def test_blinded_partials_look_uniform(self):
        """scipy-backed sanity check of the §3.5 blinding: the blinded
        partial sums are statistically indistinguishable from uniform
        over [0, B) (chi-square on 8 bins, many runs of the same true
        partial)."""
        from scipy import stats

        from repro.spfe.multiclient import MultiClientSelectedSumProtocol

        database = ServerDatabase([1000, 2000, 3000, 4000], value_bits=16)
        samples = []
        modulus = None
        for i in range(120):
            ctx = ExecutionContext(rng="blind-%d" % i)
            protocol = MultiClientSelectedSumProtocol(ctx, num_clients=2)
            result = protocol.run(database, [1, 1, 1, 1])
            assert result.value == 10_000
            modulus = 2 ** result.metadata["blind_modulus_bits"]
            ring = result.metadata["ring_channels"]
            samples.append(ring[0].server_view.payloads("ring-forward")[0])
        bins = 8
        observed = [0] * bins
        for value in samples:
            observed[min(bins - 1, value * bins // modulus)] += 1
        _, p_value = stats.chisquare(observed)
        assert p_value > 0.001, "blinded partials are visibly non-uniform"
