"""Tests for the plain selected-sum protocol (paper §2 / Figure 1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.paillier import PaillierScheme
from repro.datastore.database import ServerDatabase
from repro.datastore.workload import WorkloadGenerator
from repro.exceptions import ParameterError, ProtocolError
from repro.net.link import links
from repro.spfe.context import ExecutionContext
from repro.spfe.selected_sum import SelectedSumProtocol, private_selected_sum


class TestCorrectness:
    def test_known_sum(self, ctx):
        db = ServerDatabase([17, 4, 23, 8, 15])
        result = SelectedSumProtocol(ctx).run(db, [1, 0, 1, 0, 1])
        assert result.value == 55

    def test_empty_selection(self, ctx):
        db = ServerDatabase([17, 4, 23])
        assert SelectedSumProtocol(ctx).run(db, [0, 0, 0]).value == 0

    def test_full_selection(self, ctx):
        db = ServerDatabase([17, 4, 23])
        assert SelectedSumProtocol(ctx).run(db, [1, 1, 1]).value == 44

    def test_weighted_selection(self, ctx):
        db = ServerDatabase([10, 20, 30])
        assert SelectedSumProtocol(ctx).run(db, [3, 0, 2]).value == 90

    def test_convenience_wrapper(self):
        db = ServerDatabase([5, 6, 7])
        assert private_selected_sum(db, [0, 1, 1]).value == 13

    def test_verify_helper(self, ctx, workload):
        database, selection = workload
        result = SelectedSumProtocol(ctx).run(database, selection)
        result.verify(database.select_sum(selection))
        with pytest.raises(AssertionError):
            result.verify(result.value + 1)

    @settings(max_examples=20, deadline=None)
    @given(st.data())
    def test_random_workloads(self, data):
        n = data.draw(st.integers(1, 60))
        values = data.draw(
            st.lists(st.integers(0, 2**32 - 1), min_size=n, max_size=n)
        )
        bits = data.draw(st.lists(st.integers(0, 1), min_size=n, max_size=n))
        db = ServerDatabase(values)
        ctx = ExecutionContext(rng=repr((values, bits)))
        result = SelectedSumProtocol(ctx).run(db, bits)
        assert result.value == db.select_sum(bits)

    def test_with_real_paillier(self, small_workload):
        database, selection = small_workload
        ctx = ExecutionContext(
            scheme=PaillierScheme(), key_bits=128, mode="measured", rng="real"
        )
        result = SelectedSumProtocol(ctx).run(database, selection)
        assert result.value == database.select_sum(selection)
        assert result.scheme == "paillier"


class TestValidation:
    def test_length_mismatch(self, ctx):
        db = ServerDatabase([1, 2, 3])
        with pytest.raises(ParameterError):
            SelectedSumProtocol(ctx).run(db, [1, 0])

    def test_negative_weights(self, ctx):
        db = ServerDatabase([1, 2])
        with pytest.raises(ParameterError):
            SelectedSumProtocol(ctx).run(db, [1, -1])

    def test_non_integer_weights(self, ctx):
        db = ServerDatabase([1, 2])
        with pytest.raises(ParameterError):
            SelectedSumProtocol(ctx).run(db, [1, 0.5])  # type: ignore[list-item]

    def test_capacity_check(self):
        # A 32-bit key cannot hold a sum of many 32-bit values.
        ctx = ExecutionContext(key_bits=32, rng="cap")
        db = ServerDatabase([2**32 - 1] * 10)
        with pytest.raises(ProtocolError):
            SelectedSumProtocol(ctx).run(db, [1] * 10)


class TestAccounting:
    def test_result_fields(self, ctx, workload):
        database, selection = workload
        result = SelectedSumProtocol(ctx).run(database, selection)
        assert result.n == len(database)
        assert result.m == sum(selection)
        assert result.protocol == "plain"
        assert result.scheme == "simulated-paillier"
        assert result.link == "cluster-gigabit"

    def test_bytes_formula(self, ctx, workload):
        database, selection = workload
        result = SelectedSumProtocol(ctx).run(database, selection)
        n = len(database)
        # pk message (64 + 8) + n ciphertext messages (128 + 8 each)
        assert result.bytes_up == 72 + n * 136
        assert result.bytes_down == 136
        assert result.messages == n + 2

    def test_components_all_positive(self, ctx, workload):
        database, selection = workload
        b = SelectedSumProtocol(ctx).run(database, selection).breakdown
        assert b.client_encrypt_s > 0
        assert b.server_compute_s > 0
        assert b.communication_s > 0
        assert b.client_decrypt_s > 0
        assert b.offline_precompute_s == 0

    def test_sequential_makespan(self, ctx, workload):
        database, selection = workload
        result = SelectedSumProtocol(ctx).run(database, selection)
        # The plain protocol has no overlap: makespan ~ sum of parts
        # (small slack for the pk message).
        assert result.makespan_s == pytest.approx(
            result.breakdown.total_online_s(), rel=0.01
        )

    def test_encryption_dominates_on_cluster(self, ctx, workload):
        database, selection = workload
        b = SelectedSumProtocol(ctx).run(database, selection).breakdown
        assert b.client_encrypt_s > b.server_compute_s > b.communication_s
        assert b.client_decrypt_s < b.communication_s

    def test_decryption_constant_in_n(self):
        generator = WorkloadGenerator("dec")
        results = []
        for n in (100, 1000):
            db = generator.database(n)
            sel = generator.random_selection(n, 5)
            ctx = ExecutionContext(rng="dec")
            results.append(SelectedSumProtocol(ctx).run(db, sel))
        assert results[0].breakdown.client_decrypt_s == pytest.approx(
            results[1].breakdown.client_decrypt_s
        )

    def test_linear_scaling(self):
        generator = WorkloadGenerator("lin")
        times = []
        for n in (200, 400):
            db = generator.database(n)
            sel = generator.random_selection(n, 5)
            ctx = ExecutionContext(rng="lin")
            times.append(
                SelectedSumProtocol(ctx).run(db, sel).breakdown.client_encrypt_s
            )
        assert times[1] == pytest.approx(2 * times[0])

    def test_modem_increases_communication_only(self, workload):
        database, selection = workload
        cluster = SelectedSumProtocol(ExecutionContext(rng="m1")).run(
            database, selection
        )
        modem = SelectedSumProtocol(
            ExecutionContext(link=links.modem, rng="m2")
        ).run(database, selection)
        assert modem.breakdown.communication_s > 10 * cluster.breakdown.communication_s
        assert modem.breakdown.client_encrypt_s == pytest.approx(
            cluster.breakdown.client_encrypt_s
        )

    def test_keypair_reuse_skips_keygen(self, ctx, workload):
        database, selection = workload
        keypair, _ = ctx.generate_keypair()
        result = SelectedSumProtocol(ctx).run(database, selection, keypair=keypair)
        assert result.metadata["keygen_s"] == 0.0
        assert result.value == database.select_sum(selection)
