"""Unit tests for the trust-boundary validation layer."""

import pytest

from repro.crypto.paillier import generate_keypair
from repro.crypto.rng import DeterministicRandom
from repro.exceptions import ParameterError, PolicyViolation, ValidationError
from repro.spfe.validation import (
    ServerPolicy,
    check_ciphertext,
    check_hello,
    check_public_key,
    resume_state_bytes,
)


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(128, DeterministicRandom("validation-tests"))


class TestServerPolicy:
    def test_defaults_are_consistent(self):
        policy = ServerPolicy()
        assert policy.min_key_bits <= policy.max_key_bits
        assert policy.max_frame_payload <= policy.max_session_bytes

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_key_bits": 0},
            {"min_key_bits": 2048, "max_key_bits": 512},
            {"max_frame_payload": 0},
            {"max_chunks": 0},
            {"max_session_bytes": 0},
            {"max_registry_sessions": 0},
            {"max_registry_bytes": 0},
            {"max_frame_payload": 100, "max_session_bytes": 50},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ParameterError):
            ServerPolicy(**kwargs)


class TestCheckHello:
    def test_honest_parameters_pass(self):
        check_hello(512, 1000, 64, ServerPolicy())

    def test_zero_chunk_size_is_validation_error(self):
        with pytest.raises(ValidationError):
            check_hello(512, 1000, 0, ServerPolicy())

    def test_key_bits_outside_policy(self):
        policy = ServerPolicy(min_key_bits=256, max_key_bits=1024)
        with pytest.raises(PolicyViolation):
            check_hello(128, 1000, 64, policy)
        with pytest.raises(PolicyViolation):
            check_hello(2048, 1000, 64, policy)

    def test_chunk_count_bound(self):
        policy = ServerPolicy(max_chunks=10)
        check_hello(512, 100, 10, policy)  # exactly 10 chunks
        with pytest.raises(PolicyViolation):
            check_hello(512, 101, 10, policy)  # 11 chunks


class TestCheckPublicKey:
    def test_honest_key_passes(self, keypair):
        check_public_key(keypair.public.n, 128)

    @pytest.mark.parametrize("n", [0, 1, -5])
    def test_degenerate_modulus(self, n):
        with pytest.raises(ValidationError):
            check_public_key(n, 128)

    def test_even_modulus(self):
        with pytest.raises(ValidationError):
            check_public_key(1 << 127, 128)

    def test_oversized_modulus(self, keypair):
        with pytest.raises(ValidationError):
            check_public_key(keypair.public.n, 64)

    def test_far_undersized_modulus(self):
        with pytest.raises(ValidationError):
            check_public_key((1 << 64) + 1, 512)


class TestCheckCiphertext:
    def test_honest_ciphertext_passes(self, keypair):
        public = keypair.public
        ct = public.encrypt_raw(7, DeterministicRandom("ct"))
        check_ciphertext(ct, public.n, public.nsquare)

    def test_zero_rejected(self, keypair):
        public = keypair.public
        with pytest.raises(ValidationError):
            check_ciphertext(0, public.n, public.nsquare)

    def test_out_of_range_rejected(self, keypair):
        public = keypair.public
        with pytest.raises(ValidationError):
            check_ciphertext(public.nsquare, public.n, public.nsquare)

    def test_factor_sharing_ciphertext_rejected(self, keypair):
        # c = n is in range but shares every factor with the modulus —
        # no honest encryption produces it.
        public = keypair.public
        with pytest.raises(ValidationError):
            check_ciphertext(public.n, public.n, public.nsquare)

    def test_exception_hierarchy(self):
        # PolicyViolation is a ValidationError is a ProtocolError, so a
        # single except clause can catch any trust-boundary rejection.
        from repro.exceptions import ProtocolError

        assert issubclass(PolicyViolation, ValidationError)
        assert issubclass(ValidationError, ProtocolError)


class TestResumeStateBytes:
    def test_scales_with_key_size(self):
        assert resume_state_bytes(1024) > resume_state_bytes(128)
        # three ciphertext-width integers at 512-bit keys = 3 * 128 B
        assert resume_state_bytes(512) == 3 * 128
