"""Tests for the PIR protocols (the sublinear-communication direction)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.paillier import PaillierScheme
from repro.datastore.database import ServerDatabase
from repro.datastore.workload import WorkloadGenerator
from repro.exceptions import ParameterError
from repro.spfe.context import ExecutionContext
from repro.spfe.pir import LinearPIRProtocol, SquareRootPIRProtocol


@pytest.fixture(scope="module")
def pir_db():
    return WorkloadGenerator("pir").database(400)


class TestLinearPIR:
    def test_retrieves_correct_element(self, ctx, pir_db):
        for index in (0, 57, 399):
            result = LinearPIRProtocol(ctx).retrieve(pir_db, index)
            assert result.value == pir_db[index]

    def test_index_validated(self, ctx, pir_db):
        with pytest.raises(ParameterError):
            LinearPIRProtocol(ctx).retrieve(pir_db, 400)
        with pytest.raises(ParameterError):
            LinearPIRProtocol(ctx).retrieve(pir_db, -1)

    def test_metadata(self, ctx, pir_db):
        result = LinearPIRProtocol(ctx).retrieve(pir_db, 3)
        assert result.metadata["retrieved_index"] == 3
        assert result.metadata["reveals_to_client"] == "one element"


class TestSquareRootPIR:
    def test_grid_shape(self, ctx):
        pir = SquareRootPIRProtocol(ctx)
        assert pir.grid_shape(400) == (20, 20)
        assert pir.grid_shape(401) == (20, 21)
        assert pir.grid_shape(1) == (1, 1)
        rows, cols = pir.grid_shape(1000)
        assert rows * cols >= 1000

    def test_retrieves_correct_element(self, ctx, pir_db):
        for index in (0, 19, 20, 57, 399):
            result = SquareRootPIRProtocol(ctx).retrieve(pir_db, index)
            assert result.value == pir_db[index]

    def test_non_square_database(self, ctx):
        db = WorkloadGenerator("odd").database(389)  # not a perfect square
        for index in (0, 199, 388):
            result = SquareRootPIRProtocol(ctx).retrieve(db, index)
            assert result.value == db[index]

    def test_index_validated(self, ctx, pir_db):
        with pytest.raises(ParameterError):
            SquareRootPIRProtocol(ctx).retrieve(pir_db, len(pir_db))

    @settings(max_examples=10, deadline=None)
    @given(st.data())
    def test_random_retrieval(self, data):
        n = data.draw(st.integers(1, 200))
        index = data.draw(st.integers(0, n - 1))
        db = WorkloadGenerator("prop-%d" % n).database(n)
        ctx = ExecutionContext(rng=repr((n, index)))
        assert SquareRootPIRProtocol(ctx).retrieve(db, index).value == db[index]

    def test_with_real_paillier(self):
        db = WorkloadGenerator("pir-real").database(36, value_bits=16)
        ctx = ExecutionContext(
            scheme=PaillierScheme(), key_bits=128, mode="measured", rng="pr"
        )
        assert SquareRootPIRProtocol(ctx).retrieve(db, 17).value == db[17]


class TestCommunicationComplexity:
    def test_sqrt_beats_linear(self, ctx, pir_db):
        linear = LinearPIRProtocol(ExecutionContext(rng="c1")).retrieve(pir_db, 7)
        sqrt = SquareRootPIRProtocol(ExecutionContext(rng="c2")).retrieve(pir_db, 7)
        assert sqrt.total_bytes < linear.total_bytes / 5

    def test_sqrt_scaling(self):
        """Communication grows ~sqrt(n): 4x database -> ~2x bytes."""
        small_db = WorkloadGenerator("s1").database(400)
        large_db = WorkloadGenerator("s2").database(1600)
        small = SquareRootPIRProtocol(ExecutionContext(rng="s")).retrieve(small_db, 5)
        large = SquareRootPIRProtocol(ExecutionContext(rng="l")).retrieve(large_db, 5)
        ratio = large.total_bytes / small.total_bytes
        assert 1.7 < ratio < 2.3

    def test_ciphertext_counts(self, ctx, pir_db):
        result = SquareRootPIRProtocol(ctx).retrieve(pir_db, 7)
        assert result.metadata["uplink_ciphertexts"] == 20
        assert result.metadata["downlink_ciphertexts"] == 20

    def test_row_disclosure_documented(self, ctx, pir_db):
        result = SquareRootPIRProtocol(ctx).retrieve(pir_db, 7)
        assert "row" in result.metadata["reveals_to_client"]
