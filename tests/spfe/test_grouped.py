"""Tests for the one-pass private group-by (plaintext packing)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.paillier import PaillierScheme
from repro.datastore.database import ServerDatabase
from repro.datastore.workload import WorkloadGenerator
from repro.exceptions import ParameterError, ProtocolError
from repro.spfe.context import ExecutionContext
from repro.spfe.grouped import GroupedSumProtocol, group_means
from repro.spfe.selected_sum import SelectedSumProtocol


def expected_group_sums(database, groups, num_groups):
    sums = [0] * num_groups
    for value, g in zip(database.values, groups):
        if g is not None and g >= 0:
            sums[g] += value
    return sums


class TestCorrectness:
    def test_two_groups(self, ctx):
        db = ServerDatabase([10, 20, 30, 40, 50])
        groups = [0, 1, 0, None, 1]
        result = GroupedSumProtocol(ctx).run_grouped(db, groups)
        result.verify([40, 70])
        assert result.total == 110
        assert result[0] == 40 and result[1] == 70

    def test_single_group_degenerates_to_selected_sum(self, ctx):
        db = ServerDatabase([5, 6, 7, 8])
        groups = [0, None, 0, None]
        result = GroupedSumProtocol(ctx).run_grouped(db, groups)
        assert result.group_sums == [12]

    def test_empty_groups_are_zero(self, ctx):
        db = ServerDatabase([5, 6])
        result = GroupedSumProtocol(ctx).run_grouped(
            db, [2, 2], num_groups=4
        )
        assert result.group_sums == [0, 0, 11, 0]

    def test_negative_means_unselected(self, ctx):
        db = ServerDatabase([5, 6, 7])
        result = GroupedSumProtocol(ctx).run_grouped(db, [-1, 0, -1])
        assert result.group_sums == [6]

    def test_with_real_paillier(self):
        generator = WorkloadGenerator("grp-real")
        db = generator.database(20, value_bits=16)
        groups = [i % 3 if i % 4 else None for i in range(20)]
        ctx = ExecutionContext(
            scheme=PaillierScheme(), key_bits=256, mode="measured", rng="g"
        )
        result = GroupedSumProtocol(ctx).run_grouped(db, groups, num_groups=3)
        assert result.group_sums == expected_group_sums(db, groups, 3)

    @settings(max_examples=15, deadline=None)
    @given(st.data())
    def test_random_groupings(self, data):
        n = data.draw(st.integers(1, 60))
        num_groups = data.draw(st.integers(1, 6))
        values = data.draw(
            st.lists(st.integers(0, 2**16 - 1), min_size=n, max_size=n)
        )
        groups = data.draw(
            st.lists(
                st.one_of(st.none(), st.integers(0, num_groups - 1)),
                min_size=n,
                max_size=n,
            )
        )
        db = ServerDatabase(values, value_bits=16)
        ctx = ExecutionContext(rng=repr((values, groups)))
        result = GroupedSumProtocol(ctx).run_grouped(
            db, groups, num_groups=num_groups
        )
        assert result.group_sums == expected_group_sums(db, groups, num_groups)


class TestValidation:
    def test_length_mismatch(self, ctx):
        with pytest.raises(ParameterError):
            GroupedSumProtocol(ctx).run_grouped(ServerDatabase([1]), [0, 1])

    def test_no_assignments(self, ctx):
        with pytest.raises(ParameterError):
            GroupedSumProtocol(ctx).run_grouped(ServerDatabase([1]), [None])

    def test_group_id_out_of_range(self, ctx):
        with pytest.raises(ParameterError):
            GroupedSumProtocol(ctx).run_grouped(
                ServerDatabase([1, 2]), [0, 3], num_groups=2
            )

    def test_run_entry_point_blocked(self, ctx):
        with pytest.raises(ProtocolError):
            GroupedSumProtocol(ctx).run(ServerDatabase([1]), [1])

    def test_capacity_check_for_many_groups(self):
        """Packing 20 groups of 32-bit sums needs > 1024 plaintext bits:
        a 512-bit key must refuse."""
        ctx = ExecutionContext(key_bits=512, rng="cap")
        db = WorkloadGenerator("cap").database(100)
        groups = [i % 20 for i in range(100)]
        with pytest.raises(ProtocolError):
            GroupedSumProtocol(ctx).run_grouped(db, groups)

    def test_many_groups_fit_with_damgard_jurik(self):
        """The error message's advice works: DJ with s=3 packs what a
        512-bit Paillier cannot."""
        from repro.crypto.damgard_jurik import DamgardJurikScheme

        db = WorkloadGenerator("dj-cap").database(40, value_bits=16)
        groups = [i % 8 for i in range(40)]
        ctx = ExecutionContext(
            scheme=DamgardJurikScheme(3), key_bits=128, mode="measured",
            rng="dj-grp",
        )
        result = GroupedSumProtocol(ctx).run_grouped(db, groups)
        assert result.group_sums == expected_group_sums(db, groups, 8)


class TestEfficiency:
    def test_one_pass_vs_g_passes(self):
        """The whole point: a g-group group-by costs one protocol run."""
        generator = WorkloadGenerator("eff")
        n, g = 2000, 4
        db = generator.database(n, value_bits=16)
        groups = [i % g if i % 3 else None for i in range(n)]

        grouped = GroupedSumProtocol(ExecutionContext(rng="one")).run_grouped(
            db, groups, num_groups=g
        )
        single = SelectedSumProtocol(ExecutionContext(rng="per")).run(
            db, [1 if gr is not None else 0 for gr in groups]
        )
        # Equal cost to ONE selected sum, not g of them.
        assert grouped.run.makespan_s == pytest.approx(
            single.makespan_s, rel=0.01
        )
        assert grouped.run.total_bytes == single.total_bytes

    def test_metadata(self, ctx):
        db = ServerDatabase([1, 2, 3, 4])
        result = GroupedSumProtocol(ctx).run_grouped(db, [0, 1, 0, 1])
        assert result.run.metadata["num_groups"] == 2
        assert result.run.metadata["radix_bits"] > 0
        assert result.run.protocol == "grouped"


class TestGroupMeans:
    def test_means(self, ctx):
        db = ServerDatabase([10, 20, 30, 40])
        groups = [0, 0, 1, 1]
        result = GroupedSumProtocol(ctx).run_grouped(db, groups)
        means = group_means(result, [2, 2])
        assert means == {0: 15.0, 1: 35.0}

    def test_empty_group_skipped(self, ctx):
        db = ServerDatabase([10, 20])
        result = GroupedSumProtocol(ctx).run_grouped(db, [0, 0], num_groups=2)
        means = group_means(result, [2, 0])
        assert means == {0: 15.0}

    def test_size_mismatch(self, ctx):
        db = ServerDatabase([10, 20])
        result = GroupedSumProtocol(ctx).run_grouped(db, [0, 0])
        with pytest.raises(ParameterError):
            group_means(result, [1, 2])
