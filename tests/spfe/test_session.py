"""Tests for the deployable byte-stream sessions (incl. real sockets)."""

import socket

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.rng import DeterministicRandom
from repro.datastore.database import ServerDatabase
from repro.datastore.workload import WorkloadGenerator
from repro.exceptions import ProtocolError
from repro.net import codec
from repro.net.codec import FrameType
from repro.spfe.session import (
    ClientSession,
    ServerSession,
    run_sessions_in_memory,
)


@pytest.fixture(scope="module")
def workload_bytes():
    generator = WorkloadGenerator("session-tests")
    database = generator.database(60, value_bits=16)
    selection = generator.random_selection(60, 15)
    return database, selection


def make_client(selection, **kwargs):
    kwargs.setdefault("key_bits", 128)
    kwargs.setdefault("rng", DeterministicRandom("client"))
    return ClientSession(selection, **kwargs)


class TestInMemory:
    def test_correct_sum(self, workload_bytes):
        database, selection = workload_bytes
        value = run_sessions_in_memory(make_client(selection), ServerSession(database))
        assert value == database.select_sum(selection)

    def test_chunk_sizes_irrelevant(self, workload_bytes):
        database, selection = workload_bytes
        values = {
            run_sessions_in_memory(
                make_client(selection, chunk_size=size), ServerSession(database)
            )
            for size in (1, 7, 60, 1000)
        }
        assert values == {database.select_sum(selection)}

    def test_byte_accounting_symmetric(self, workload_bytes):
        database, selection = workload_bytes
        client = make_client(selection)
        server = ServerSession(database)
        run_sessions_in_memory(client, server)
        assert client.bytes_sent == server.bytes_received
        assert server.bytes_sent == client.bytes_received

    def test_server_sees_only_ciphertexts(self, workload_bytes):
        """Transcript audit at the byte level: every logged value is a
        full-size element of Z*_{n^2}, never a small plaintext."""
        database, selection = workload_bytes
        client = make_client(selection)
        server = ServerSession(database)
        run_sessions_in_memory(client, server)
        assert len(server.ciphertext_log) == len(database)
        assert all(ct > 2**64 for ct in server.ciphertext_log)
        assert len(set(server.ciphertext_log)) == len(database)  # no reuse

    @settings(max_examples=8, deadline=None)
    @given(st.data())
    def test_random_workloads(self, data):
        n = data.draw(st.integers(1, 40))
        values = data.draw(st.lists(st.integers(0, 999), min_size=n, max_size=n))
        bits = data.draw(st.lists(st.integers(0, 1), min_size=n, max_size=n))
        database = ServerDatabase(values, value_bits=10)
        client = ClientSession(
            bits, key_bits=128, chunk_size=5,
            rng=DeterministicRandom(repr(values)),
        )
        value = run_sessions_in_memory(client, ServerSession(database))
        assert value == database.select_sum(bits)


class TestOverRealSockets:
    def test_socketpair_with_fragmented_reads(self, workload_bytes):
        database, selection = workload_bytes
        client = make_client(selection, chunk_size=9)
        server = ServerSession(database)
        a, b = socket.socketpair()
        try:
            for outgoing in client.initial_bytes():
                a.sendall(outgoing)
            a.shutdown(socket.SHUT_WR)
            while not server.finished:
                data = b.recv(251)  # odd size: frames split across reads
                if not data:
                    break
                reply = server.receive_bytes(data)
                if reply:
                    b.sendall(reply)
            while client.result is None:
                client.receive_bytes(a.recv(11))
        finally:
            a.close()
            b.close()
        assert client.result == database.select_sum(selection)


class TestValidationAndErrors:
    def test_client_validates_inputs(self):
        with pytest.raises(ProtocolError):
            ClientSession([])
        with pytest.raises(ProtocolError):
            ClientSession([1, -1])
        with pytest.raises(ProtocolError):
            ClientSession([1], chunk_size=0)

    def test_server_rejects_wrong_database_size(self, workload_bytes):
        database, _ = workload_bytes
        client = make_client([1, 0, 1])  # claims n=3; server has 60
        server = ServerSession(database)
        reply = server.receive_bytes(next(client.initial_bytes()))
        decoder = codec.FrameDecoder()
        decoder.feed(reply)
        frame = next(decoder.frames())
        assert frame.frame_type == FrameType.ERROR
        with pytest.raises(ProtocolError):
            client.receive_bytes(reply)

    def test_server_rejects_tiny_keys(self):
        database = ServerDatabase([2**32 - 1] * 10)
        client = ClientSession(
            [1] * 10, key_bits=32, rng=DeterministicRandom("tiny")
        )
        server = ServerSession(database)
        reply = server.receive_bytes(next(client.initial_bytes()))
        decoder = codec.FrameDecoder()
        decoder.feed(reply)
        assert next(decoder.frames()).frame_type == FrameType.ERROR

    def test_server_rejects_out_of_range_ciphertext(self, workload_bytes):
        database, selection = workload_bytes
        client = make_client(selection)
        server = ServerSession(database)
        stream = list(client.initial_bytes())
        server.receive_bytes(stream[0])  # hello
        server.receive_bytes(stream[1])  # public key
        # Forge a chunk with a zero "ciphertext" (not in Z*_{n^2}).
        forged = codec.encode_ciphertext_chunk([0], 128)
        reply = server.receive_bytes(forged)
        decoder = codec.FrameDecoder()
        decoder.feed(reply)
        assert next(decoder.frames()).frame_type == FrameType.ERROR

    def test_server_rejects_overdelivery(self):
        database = ServerDatabase([5, 6])
        client = ClientSession([1, 1], key_bits=128,
                               rng=DeterministicRandom("over"))
        server = ServerSession(database)
        stream = list(client.initial_bytes())
        for data in stream:
            server.receive_bytes(data)
        assert server.finished
        extra = codec.encode_ciphertext_chunk([12345], 128)
        reply = server.receive_bytes(extra)
        decoder = codec.FrameDecoder()
        decoder.feed(reply)
        assert next(decoder.frames()).frame_type == FrameType.ERROR

    def test_client_rejects_duplicate_result(self, workload_bytes):
        database, selection = workload_bytes
        client = make_client(selection)
        server = ServerSession(database)
        result_bytes = b""
        for outgoing in client.initial_bytes():
            reply = server.receive_bytes(outgoing)
            if reply:
                result_bytes = reply
                client.receive_bytes(reply)
        assert client.result is not None
        with pytest.raises(ProtocolError):
            client.receive_bytes(result_bytes)

    def test_client_rejects_unexpected_frame(self, workload_bytes):
        _, selection = workload_bytes
        client = make_client(selection)
        bogus = codec.encode_hello(128, 10, 5)
        with pytest.raises(ProtocolError):
            client.receive_bytes(bogus)
