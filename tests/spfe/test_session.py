"""Tests for the deployable byte-stream sessions (incl. real sockets)."""

import socket
import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.rng import DeterministicRandom
from repro.datastore.database import ServerDatabase
from repro.datastore.workload import WorkloadGenerator
from repro.exceptions import ProtocolError, SessionResumeError
from repro.net import codec
from repro.net.codec import FrameType
from repro.spfe.session import (
    ClientSession,
    ServerSession,
    SessionRegistry,
    run_sessions_in_memory,
)


@pytest.fixture(scope="module")
def workload_bytes():
    generator = WorkloadGenerator("session-tests")
    database = generator.database(60, value_bits=16)
    selection = generator.random_selection(60, 15)
    return database, selection


def make_client(selection, **kwargs):
    kwargs.setdefault("key_bits", 128)
    kwargs.setdefault("rng", DeterministicRandom("client"))
    return ClientSession(selection, **kwargs)


class TestInMemory:
    def test_correct_sum(self, workload_bytes):
        database, selection = workload_bytes
        value = run_sessions_in_memory(make_client(selection), ServerSession(database))
        assert value == database.select_sum(selection)

    def test_chunk_sizes_irrelevant(self, workload_bytes):
        database, selection = workload_bytes
        values = {
            run_sessions_in_memory(
                make_client(selection, chunk_size=size), ServerSession(database)
            )
            for size in (1, 7, 60, 1000)
        }
        assert values == {database.select_sum(selection)}

    def test_byte_accounting_symmetric(self, workload_bytes):
        database, selection = workload_bytes
        client = make_client(selection)
        server = ServerSession(database)
        run_sessions_in_memory(client, server)
        assert client.bytes_sent == server.bytes_received
        assert server.bytes_sent == client.bytes_received

    def test_server_sees_only_ciphertexts(self, workload_bytes):
        """Transcript audit at the byte level: every logged value is a
        full-size element of Z*_{n^2}, never a small plaintext."""
        database, selection = workload_bytes
        client = make_client(selection)
        server = ServerSession(database)
        run_sessions_in_memory(client, server)
        assert len(server.ciphertext_log) == len(database)
        assert all(ct > 2**64 for ct in server.ciphertext_log)
        assert len(set(server.ciphertext_log)) == len(database)  # no reuse

    @settings(max_examples=8, deadline=None)
    @given(st.data())
    def test_random_workloads(self, data):
        n = data.draw(st.integers(1, 40))
        values = data.draw(st.lists(st.integers(0, 999), min_size=n, max_size=n))
        bits = data.draw(st.lists(st.integers(0, 1), min_size=n, max_size=n))
        database = ServerDatabase(values, value_bits=10)
        client = ClientSession(
            bits, key_bits=128, chunk_size=5,
            rng=DeterministicRandom(repr(values)),
        )
        value = run_sessions_in_memory(client, ServerSession(database))
        assert value == database.select_sum(bits)


class TestOverRealSockets:
    def test_socketpair_with_fragmented_reads(self, workload_bytes):
        database, selection = workload_bytes
        client = make_client(selection, chunk_size=9)
        server = ServerSession(database)
        a, b = socket.socketpair()
        try:
            for outgoing in client.initial_bytes():
                a.sendall(outgoing)
            a.shutdown(socket.SHUT_WR)
            while not server.finished:
                data = b.recv(251)  # odd size: frames split across reads
                if not data:
                    break
                reply = server.receive_bytes(data)
                if reply:
                    b.sendall(reply)
            while client.result is None:
                client.receive_bytes(a.recv(11))
        finally:
            a.close()
            b.close()
        assert client.result == database.select_sum(selection)


class TestValidationAndErrors:
    def test_client_validates_inputs(self):
        with pytest.raises(ProtocolError):
            ClientSession([])
        with pytest.raises(ProtocolError):
            ClientSession([1, -1])
        with pytest.raises(ProtocolError):
            ClientSession([1], chunk_size=0)

    def test_server_rejects_wrong_database_size(self, workload_bytes):
        database, _ = workload_bytes
        client = make_client([1, 0, 1])  # claims n=3; server has 60
        server = ServerSession(database)
        reply = server.receive_bytes(next(client.initial_bytes()))
        decoder = codec.FrameDecoder()
        decoder.feed(reply)
        frame = next(decoder.frames())
        assert frame.frame_type == FrameType.ERROR
        with pytest.raises(ProtocolError):
            client.receive_bytes(reply)

    def test_server_rejects_tiny_keys(self):
        database = ServerDatabase([2**32 - 1] * 10)
        client = ClientSession(
            [1] * 10, key_bits=32, rng=DeterministicRandom("tiny")
        )
        server = ServerSession(database)
        reply = server.receive_bytes(next(client.initial_bytes()))
        decoder = codec.FrameDecoder()
        decoder.feed(reply)
        assert next(decoder.frames()).frame_type == FrameType.ERROR

    def test_server_rejects_out_of_range_ciphertext(self, workload_bytes):
        database, selection = workload_bytes
        client = make_client(selection)
        server = ServerSession(database)
        stream = list(client.initial_bytes())
        server.receive_bytes(stream[0])  # hello
        server.receive_bytes(stream[1])  # public key
        # Forge a chunk with a zero "ciphertext" (not in Z*_{n^2}).
        forged = codec.encode_ciphertext_chunk([0], 128)
        reply = server.receive_bytes(forged)
        decoder = codec.FrameDecoder()
        decoder.feed(reply)
        assert next(decoder.frames()).frame_type == FrameType.ERROR

    def test_server_rejects_overdelivery(self):
        database = ServerDatabase([5, 6])
        client = ClientSession([1, 1], key_bits=128,
                               rng=DeterministicRandom("over"))
        server = ServerSession(database)
        stream = list(client.initial_bytes())
        for data in stream:
            server.receive_bytes(data)
        assert server.finished
        extra = codec.encode_ciphertext_chunk([12345], 128)
        reply = server.receive_bytes(extra)
        decoder = codec.FrameDecoder()
        decoder.feed(reply)
        assert next(decoder.frames()).frame_type == FrameType.ERROR

    def test_client_rejects_duplicate_result(self, workload_bytes):
        database, selection = workload_bytes
        client = make_client(selection)
        server = ServerSession(database)
        result_bytes = b""
        for outgoing in client.initial_bytes():
            reply = server.receive_bytes(outgoing)
            if reply:
                result_bytes = reply
                client.receive_bytes(reply)
        assert client.result is not None
        with pytest.raises(ProtocolError):
            client.receive_bytes(result_bytes)

    def test_client_rejects_unexpected_frame(self, workload_bytes):
        _, selection = workload_bytes
        client = make_client(selection)
        bogus = codec.encode_hello(128, 10, 5)
        with pytest.raises(ProtocolError):
            client.receive_bytes(bogus)

    def test_client_rejects_unsolicited_ack(self, workload_bytes):
        _, selection = workload_bytes
        client = make_client(selection)
        with pytest.raises(ProtocolError):
            client.receive_bytes(codec.encode_ack(3))


def drive(client_stream, server, client):
    """Feed client frames to the server, relaying replies back."""
    for outgoing in client_stream:
        reply = server.receive_bytes(outgoing)
        if reply:
            client.receive_bytes(reply)


class TestResume:
    def test_resume_after_partial_stream(self, workload_bytes):
        """A client cut off after k chunks re-sends exactly the rest —
        no re-encryption, and the sum is still correct."""
        database, selection = workload_bytes
        expected = database.select_sum(selection)
        registry = SessionRegistry()
        client = make_client(selection, chunk_size=9)  # 7 chunks over n=60

        server1 = ServerSession(database, registry=registry)
        stream = client.initial_bytes()
        server1.receive_bytes(next(stream))  # HELLO
        server1.receive_bytes(next(stream))  # PUBLIC_KEY
        for _ in range(3):  # 3 of 7 chunks, then the connection "dies"
            server1.receive_bytes(next(stream))
        stream.close()
        encryptions_at_cut = client.encryptions
        assert encryptions_at_cut == 3 * 9

        server2 = ServerSession(database, registry=registry)
        client.receive_bytes(server2.receive_bytes(client.resume_request()))
        assert client.resume_ready
        sent_before = client.chunk_frames_sent
        drive(client.resume_bytes(), server2, client)

        assert client.result == expected
        assert client.chunk_frames_sent - sent_before == 7 - 3
        assert server2.chunk_frames_processed == 7 - 3
        assert client.encryptions == len(selection)  # never re-encrypted

    def test_resume_unknown_session_restarts_cleanly(self, workload_bytes):
        database, selection = workload_bytes
        client = make_client(selection, chunk_size=9)
        for data in client.initial_bytes():
            pass  # encrypt everything; the "connection" delivered nothing
        server = ServerSession(database, registry=SessionRegistry())
        client.receive_bytes(server.receive_bytes(client.resume_request()))
        assert client.resume_ready
        drive(client.resume_bytes(), server, client)
        assert client.result == database.select_sum(selection)
        # The restart reused the cached ciphertexts: still one encryption
        # per element, even though every chunk crossed the wire twice.
        assert client.encryptions == len(selection)

    def test_resume_after_result_lost_resends_result(self, workload_bytes):
        database, selection = workload_bytes
        registry = SessionRegistry()
        client = make_client(selection)
        server1 = ServerSession(database, registry=registry)
        for outgoing in client.initial_bytes():
            server1.receive_bytes(outgoing)  # final reply (RESULT) is lost
        assert server1.finished and client.result is None

        server2 = ServerSession(database, registry=registry)
        client.receive_bytes(server2.receive_bytes(client.resume_request()))
        assert client.result == database.select_sum(selection)

    def test_eviction_degrades_to_restart(self, workload_bytes):
        database, selection = workload_bytes
        registry = SessionRegistry(capacity=1)
        client = make_client(selection, chunk_size=9)
        server1 = ServerSession(database, registry=registry)
        stream = client.initial_bytes()
        for _ in range(4):  # hello, pk, 2 chunks
            server1.receive_bytes(next(stream))
        stream.close()
        # Another session pushes ours out of the capacity-1 registry.
        other = make_client([1] * 60, rng=DeterministicRandom("other"))
        run_sessions_in_memory(other, ServerSession(database, registry=registry))
        assert registry.evictions >= 1
        assert client.session_id not in registry

        server2 = ServerSession(database, registry=registry)
        client.receive_bytes(server2.receive_bytes(client.resume_request()))
        drive(client.resume_bytes(), server2, client)
        assert client.result == database.select_sum(selection)

    def test_duplicate_chunks_are_ignored(self, workload_bytes):
        database, selection = workload_bytes
        client = make_client(selection, chunk_size=9)
        server = ServerSession(database, registry=SessionRegistry())
        frames = list(client.initial_bytes())
        server.receive_bytes(frames[0])
        server.receive_bytes(frames[1])
        server.receive_bytes(frames[2])  # chunk 0
        assert server.receive_bytes(frames[2]) == b""  # duplicate: no-op
        assert not server.errored
        for data in frames[3:]:
            reply = server.receive_bytes(data)
            if reply:
                client.receive_bytes(reply)
        assert client.result == database.select_sum(selection)
        assert server.chunk_frames_processed == len(frames) - 2

    def test_chunk_sequence_gap_is_rejected(self, workload_bytes):
        database, selection = workload_bytes
        client = make_client(selection, chunk_size=9)
        server = ServerSession(database)
        frames = list(client.initial_bytes())
        server.receive_bytes(frames[0])
        server.receive_bytes(frames[1])
        reply = server.receive_bytes(frames[3])  # chunk 1 before chunk 0
        assert server.errored
        decoder = codec.FrameDecoder()
        decoder.feed(reply)
        assert next(decoder.frames()).frame_type == FrameType.ERROR

    def test_v1_wire_cannot_resume(self, workload_bytes):
        database, selection = workload_bytes
        client = make_client(selection, wire_version=1)
        assert client.session_id is None
        with pytest.raises(SessionResumeError):
            client.resume_request()
        # ...but the legacy wire still completes against a v2 server.
        value = run_sessions_in_memory(client, ServerSession(database))
        assert value == database.select_sum(selection)

    def test_resume_without_registry_says_unknown(self, workload_bytes):
        database, selection = workload_bytes
        client = make_client(selection)
        server = ServerSession(database)  # no registry at all
        client.receive_bytes(server.receive_bytes(client.resume_request()))
        drive(client.resume_bytes(), server, client)
        assert client.result == database.select_sum(selection)

    def test_registry_lru_and_discard(self):
        registry = SessionRegistry(capacity=2)
        a, b, c = b"a" * 16, b"b" * 16, b"c" * 16
        registry.save(a, "A")
        registry.save(b, "B")
        registry.get(a)  # touch a so b is the LRU
        registry.save(c, "C")
        assert a in registry and c in registry and b not in registry
        registry.discard(a)
        assert len(registry) == 1
        with pytest.raises(Exception):
            SessionRegistry(capacity=0)


class _FakeState:
    """Stand-in resume state with an explicit byte footprint."""

    def __init__(self, resident_bytes):
        self.resident_bytes = resident_bytes


class TestRegistryByteBudget:
    def test_byte_budget_evicts_lru(self):
        registry = SessionRegistry(capacity=100, max_bytes=1000)
        a, b, c = b"a" * 16, b"b" * 16, b"c" * 16
        registry.save(a, _FakeState(400))
        registry.save(b, _FakeState(400))
        assert registry.resident_bytes == 800
        registry.save(c, _FakeState(400))  # 1200 > 1000: evict LRU (a)
        assert a not in registry
        assert b in registry and c in registry
        assert registry.resident_bytes == 800
        assert registry.evictions == 1

    def test_single_oversized_state_is_kept(self):
        # The newest session is never evicted on its own account.
        registry = SessionRegistry(capacity=10, max_bytes=100)
        big = b"x" * 16
        registry.save(big, _FakeState(5000))
        assert big in registry
        assert registry.resident_bytes == 5000

    def test_refresh_does_not_double_count(self):
        registry = SessionRegistry(capacity=10, max_bytes=10_000)
        sid = b"s" * 16
        state = _FakeState(300)
        for _ in range(5):
            registry.save(sid, state)
        assert registry.resident_bytes == 300

    def test_discard_releases_bytes(self):
        registry = SessionRegistry(capacity=10, max_bytes=10_000)
        sid = b"s" * 16
        registry.save(sid, _FakeState(300))
        registry.discard(sid)
        assert registry.resident_bytes == 0

    def test_real_sessions_account_bytes(self, workload_bytes):
        database, selection = workload_bytes
        registry = SessionRegistry(capacity=8, max_bytes=1 << 20)
        run_sessions_in_memory(
            make_client(selection), ServerSession(database, registry=registry)
        )
        from repro.spfe.validation import resume_state_bytes

        assert registry.resident_bytes == resume_state_bytes(128)

    def test_bad_byte_budget_rejected(self):
        with pytest.raises(Exception):
            SessionRegistry(capacity=2, max_bytes=0)


class TestConcurrentRegistry:
    """One registry is shared by every worker of a concurrent server."""

    def test_registry_survives_concurrent_hammering(self):
        """save/get/discard from many threads must neither raise (the
        unlocked OrderedDict KeyError race) nor let the byte accounting
        drift from the resident states."""
        registry = SessionRegistry(capacity=8, max_bytes=2_000)
        sids = [bytes([i]) * 16 for i in range(16)]
        errors = []

        def hammer(worker):
            try:
                for step in range(400):
                    sid = sids[(worker * 7 + step) % len(sids)]
                    op = (worker + step) % 3
                    if op == 0:
                        registry.save(sid, _FakeState(100 + step % 3))
                    elif op == 1:
                        registry.get(sid)
                    else:
                        registry.discard(sid)
            except Exception as exc:  # pragma: no cover — the bug itself
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert registry.resident_bytes == sum(
            state.resident_bytes for state in registry._states.values()
        )

    def test_resume_state_is_copied_not_shared(self, workload_bytes):
        """A client whose read timed out reconnects and resumes while
        its old connection is still folding buffered chunks; the two
        server sessions must never share a mutable state object, or the
        stale one corrupts the live one's aggregate."""
        database, selection = workload_bytes
        registry = SessionRegistry()
        client = make_client(selection, chunk_size=9)

        server1 = ServerSession(database, registry=registry)
        stream = client.initial_bytes()
        server1.receive_bytes(next(stream))  # HELLO
        server1.receive_bytes(next(stream))  # PUBLIC_KEY
        chunk_frames = [next(stream) for _ in range(4)]
        stream.close()
        for data in chunk_frames[:3]:
            server1.receive_bytes(data)

        # Resume on a fresh connection while the old one is still live.
        server2 = ServerSession(database, registry=registry)
        client.receive_bytes(server2.receive_bytes(client.resume_request()))
        assert client.resume_ready

        # Registry entries are frozen snapshots: neither live session
        # holds the stored object (publish-snapshot + copy-on-resume).
        entry = registry.get(client.session_id)
        assert entry is not server1._resume_state
        assert entry is not server2._resume_state
        assert server1._resume_state is not server2._resume_state

        # The stale connection drains its buffered chunk *after* the
        # resume; with shared state this would fold chunk 3 into the
        # aggregate the resumed session is about to fold it into again.
        server1.receive_bytes(chunk_frames[3])

        drive(client.resume_bytes(), server2, client)
        assert client.result == database.select_sum(selection)
        assert server2.chunk_frames_processed == client.total_chunks - 3


class TestServerPolicyEnforcement:
    """ServerSession with a policy rejects hostile-but-well-formed input."""

    def _policy(self, **kwargs):
        from repro.spfe.validation import ServerPolicy

        kwargs.setdefault("min_key_bits", 64)
        return ServerPolicy(**kwargs)

    def test_honest_run_unaffected_by_policy(self, workload_bytes):
        database, selection = workload_bytes
        server = ServerSession(database, policy=self._policy())
        value = run_sessions_in_memory(make_client(selection), server)
        assert value == database.select_sum(selection)
        assert not server.errored

    def test_out_of_policy_key_bits_rejected(self, workload_bytes):
        from repro.exceptions import PolicyViolation

        database, selection = workload_bytes
        server = ServerSession(
            database, policy=self._policy(min_key_bits=256)
        )
        client = make_client(selection)  # 128-bit key
        with pytest.raises(PolicyViolation):
            run_sessions_in_memory(client, server)
        assert isinstance(server.last_error, PolicyViolation)

    def test_even_modulus_rejected(self, workload_bytes):
        from repro.exceptions import ValidationError
        from repro.net import codec

        database, _ = workload_bytes
        server = ServerSession(database, policy=self._policy())
        reply = server.receive_bytes(
            codec.encode_hello(128, len(database), 8, b"\1" * 16, 0)
        )
        assert reply == b""
        reply = server.receive_bytes(
            codec.encode_public_key(1 << 126, 128, 0)
        )
        assert server.errored
        assert isinstance(server.last_error, ValidationError)
        code, _message = codec.decode_error(
            next(iter(_decode_frames(reply))).payload
        )
        assert code == codec.ERROR_CODE_VALIDATION

    def test_non_coprime_ciphertext_rejected(self, workload_bytes):
        from repro.exceptions import ValidationError
        from repro.net import codec

        database, selection = workload_bytes
        client = make_client(selection, chunk_size=1)
        server = ServerSession(database, policy=self._policy())
        stream = client.initial_bytes()
        server.receive_bytes(next(stream))  # HELLO
        server.receive_bytes(next(stream))  # PUBLIC_KEY
        # c = n is in range but shares every factor with the modulus.
        poisoned = codec.encode_ciphertext_chunk(
            [client.public_key.n], 128, 0
        )
        server.receive_bytes(poisoned)
        assert server.errored
        assert isinstance(server.last_error, ValidationError)

    def test_session_byte_quota_enforced(self, workload_bytes):
        from repro.exceptions import PolicyViolation

        database, selection = workload_bytes
        server = ServerSession(
            database,
            policy=self._policy(
                max_session_bytes=64, max_frame_payload=64
            ),
        )
        client = make_client(selection)
        with pytest.raises(PolicyViolation):
            run_sessions_in_memory(client, server)

    def test_errored_session_loses_resume_state(self, workload_bytes):
        """A rejected peer must restart, never resume poisoned state."""
        from repro.net import codec

        database, selection = workload_bytes
        registry = SessionRegistry()
        client = make_client(selection, chunk_size=1)
        server = ServerSession(
            database, registry=registry, policy=self._policy()
        )
        stream = client.initial_bytes()
        server.receive_bytes(next(stream))
        server.receive_bytes(next(stream))
        assert client.session_id in registry
        server.receive_bytes(
            codec.encode_ciphertext_chunk([client.public_key.n], 128, 0)
        )
        assert server.errored
        assert client.session_id not in registry

    def test_typed_error_surfaces_client_side(self, workload_bytes):
        from repro.exceptions import PolicyViolation

        database, selection = workload_bytes
        server = ServerSession(
            database, policy=self._policy(min_key_bits=256)
        )
        client = make_client(selection)
        with pytest.raises(PolicyViolation):
            run_sessions_in_memory(client, server)


class TestClientBusyHandling:
    def test_busy_frame_raises_server_busy(self, workload_bytes):
        from repro.exceptions import ServerBusy
        from repro.net import codec

        _, selection = workload_bytes
        client = make_client(selection)
        with pytest.raises(ServerBusy):
            client.receive_bytes(codec.encode_busy(100))

    def test_server_busy_is_a_transport_error(self):
        from repro.exceptions import ServerBusy, TransportError

        assert issubclass(ServerBusy, TransportError)


def _decode_frames(data):
    from repro.net.codec import FrameDecoder

    decoder = FrameDecoder()
    decoder.feed(data)
    return list(decoder.frames())
