"""Tests for the column-oriented private statistics client."""

import numpy as np
import pytest

from repro.datastore.table import Table
from repro.datastore.workload import WorkloadGenerator
from repro.spfe.context import ExecutionContext
from repro.spfe.table_client import PrivateTableClient


@pytest.fixture(scope="module")
def patients():
    generator = WorkloadGenerator("table-client")
    ages = generator.database(80, value_bits=8)
    pressures = generator.database(81, value_bits=8)
    table = Table(
        {"age": ages.values, "bp": pressures.values[:80]}, value_bits=8
    )
    selection = generator.random_selection(80, 25)
    return table, selection


@pytest.fixture()
def client(patients, ctx):
    table, _ = patients
    return PrivateTableClient(table, ctx)


def masked(table, column, selection):
    values = np.array(table.column(column).values, dtype=float)
    return values[np.array(selection, dtype=bool)]


class TestSingleColumn:
    def test_sum(self, patients, client):
        table, selection = patients
        result = client.sum("age", selection)
        assert result.value == masked(table, "age", selection).sum()

    def test_mean(self, patients, client):
        table, selection = patients
        assert client.mean("age", selection).value == pytest.approx(
            masked(table, "age", selection).mean()
        )

    def test_variance_and_std(self, patients, client):
        table, selection = patients
        expected = masked(table, "bp", selection)
        assert client.variance("bp", selection).value == pytest.approx(
            expected.var()
        )
        assert client.std("bp", selection, ddof=1).value == pytest.approx(
            expected.std(ddof=1)
        )

    def test_weighted_average(self, patients, client):
        table, _ = patients
        weights = [i % 3 for i in range(len(table))]
        result = client.weighted_average("age", weights)
        assert result.value == pytest.approx(
            np.average(table.column("age").values, weights=weights)
        )

    def test_unknown_column(self, patients, client):
        from repro.exceptions import DatabaseError

        _, selection = patients
        with pytest.raises(DatabaseError):
            client.mean("height", selection)


class TestTwoColumn:
    def test_covariance(self, patients, client):
        table, selection = patients
        result = client.covariance("age", "bp", selection)
        x = masked(table, "age", selection)
        y = masked(table, "bp", selection)
        assert result.value == pytest.approx(np.cov(x, y, ddof=0)[0][1])

    def test_correlation_self(self, patients, client):
        _, selection = patients
        assert client.correlation("age", "age", selection).value == pytest.approx(
            1.0
        )


class TestDescribe:
    def test_describe_matches_components(self, patients, client):
        table, selection = patients
        summary = client.describe("age", selection)
        values = masked(table, "age", selection)
        assert summary["count"] == len(values)
        assert summary["mean"] == pytest.approx(values.mean())
        assert summary["variance"] == pytest.approx(values.var())
        assert summary["std"] == pytest.approx(values.std())
        assert len(summary["runs"]) == 2  # one sum + one squared sum
