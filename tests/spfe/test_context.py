"""Tests for :mod:`repro.spfe.context`."""

import pytest

from repro.crypto.paillier import PaillierScheme
from repro.crypto.simulated import SimulatedPaillier
from repro.exceptions import ParameterError
from repro.net.link import links
from repro.spfe.context import CLIENT, SERVER, ExecutionContext
from repro.timing.costmodel import Op, profiles


class TestConstruction:
    def test_defaults_modelled(self):
        ctx = ExecutionContext()
        assert isinstance(ctx.scheme, SimulatedPaillier)
        assert ctx.link is links.cluster
        assert ctx.mode == "modelled"
        assert ctx.key_bits == 512

    def test_defaults_measured(self):
        ctx = ExecutionContext(mode="measured")
        assert isinstance(ctx.scheme, PaillierScheme)

    def test_invalid_mode(self):
        with pytest.raises(ParameterError):
            ExecutionContext(mode="psychic")

    def test_invalid_key_bits(self):
        with pytest.raises(ParameterError):
            ExecutionContext(key_bits=8)

    def test_describe(self):
        text = ExecutionContext().describe()
        assert "simulated-paillier" in text
        assert "cluster-gigabit" in text


class TestProfiles:
    def test_party_routing(self):
        ctx = ExecutionContext(
            client_profile=profiles.ultrasparc_500mhz,
            server_profile=profiles.pentium_1ghz,
        )
        assert ctx.profile_for(CLIENT) is profiles.ultrasparc_500mhz
        assert ctx.profile_for("client-2") is profiles.ultrasparc_500mhz
        assert ctx.profile_for(SERVER) is profiles.pentium_1ghz

    def test_unknown_party(self):
        with pytest.raises(ParameterError):
            ExecutionContext().profile_for("eve")


class TestComputeBlocks:
    def test_modelled_charge(self):
        ctx = ExecutionContext()
        with ctx.compute(CLIENT, Op.ENCRYPT, 100) as block:
            pass
        expected = 100 * profiles.pentium3_2ghz.cost(Op.ENCRYPT, 512)
        assert block.seconds == pytest.approx(expected)

    def test_modelled_scales_with_key_bits(self):
        small = ExecutionContext(key_bits=256)
        big = ExecutionContext(key_bits=1024)
        with small.compute(CLIENT, Op.ENCRYPT, 1) as a:
            pass
        with big.compute(CLIENT, Op.ENCRYPT, 1) as b:
            pass
        assert b.seconds > a.seconds

    def test_measured_uses_wall_clock(self):
        ctx = ExecutionContext(mode="measured", key_bits=64)
        with ctx.compute(CLIENT, Op.ENCRYPT, 1) as block:
            total = sum(range(10_000))
        assert total > 0
        assert block.seconds > 0
        # Measured time is wall time, unrelated to the model's 10.8 ms.
        assert block.seconds < 0.1

    def test_negative_count_rejected(self):
        with pytest.raises(ParameterError):
            ExecutionContext().compute(CLIENT, Op.ENCRYPT, -1)

    def test_op_cost_helper(self):
        ctx = ExecutionContext()
        assert ctx.op_cost(SERVER, Op.WEIGHTED_STEP) == pytest.approx(
            profiles.pentium3_2ghz.cost(Op.WEIGHTED_STEP, 512)
        )


class TestWiring:
    def test_channels_are_fresh(self):
        ctx = ExecutionContext()
        assert ctx.new_channel() is not ctx.new_channel()

    def test_keypair_generation_charged(self):
        ctx = ExecutionContext(rng="kg")
        keypair, seconds = ctx.generate_keypair()
        assert seconds == pytest.approx(
            profiles.pentium3_2ghz.cost(Op.KEYGEN, 512)
        )
        assert keypair.public.bits == 512

    def test_ciphertext_bytes(self):
        ctx = ExecutionContext(rng="cb")
        keypair, _ = ctx.generate_keypair()
        assert ctx.ciphertext_bytes(keypair.public) == 128
