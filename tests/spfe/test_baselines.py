"""Tests for the baseline protocols (paper §2 comparison points)."""

import pytest

from repro.datastore.database import ServerDatabase
from repro.datastore.workload import WorkloadGenerator
from repro.exceptions import PrivacyViolationError
from repro.spfe.baselines import (
    DownloadDatabaseProtocol,
    NonPrivateIndexProtocol,
    YaoBaselineProtocol,
)
from repro.spfe.context import ExecutionContext
from repro.spfe.privacy import audit_result
from repro.spfe.selected_sum import SelectedSumProtocol


class TestNonPrivateIndex:
    def test_correct(self, ctx, workload):
        database, selection = workload
        result = NonPrivateIndexProtocol(ctx).run(database, selection)
        assert result.value == database.select_sum(selection)

    def test_declares_leak(self, ctx, workload):
        database, selection = workload
        result = NonPrivateIndexProtocol(ctx).run(database, selection)
        assert result.metadata["leaks"] == ["client-selection"]

    def test_fails_privacy_audit(self, ctx, workload):
        database, selection = workload
        result = NonPrivateIndexProtocol(ctx).run(database, selection)
        with pytest.raises(PrivacyViolationError):
            audit_result(result, selection)

    def test_is_nearly_free(self, ctx, workload):
        database, selection = workload
        baseline = NonPrivateIndexProtocol(ctx).run(database, selection)
        private = SelectedSumProtocol(
            ExecutionContext(rng="cmp")
        ).run(database, selection)
        assert baseline.makespan_s < private.makespan_s / 100
        assert baseline.total_bytes < private.total_bytes / 100

    def test_server_sees_the_selection(self, ctx, workload):
        """The leak is real: the indices are in the server's view."""
        database, selection = workload
        result = NonPrivateIndexProtocol(ctx).run(database, selection)
        channel = result.metadata["channel"]
        payloads = channel.server_view.payloads("plain-indices")
        assert list(payloads[0]) == [i for i, w in enumerate(selection) if w]


class TestDownloadDatabase:
    def test_correct(self, ctx, workload):
        database, selection = workload
        result = DownloadDatabaseProtocol(ctx).run(database, selection)
        assert result.value == database.select_sum(selection)

    def test_declares_leak(self, ctx, workload):
        database, selection = workload
        result = DownloadDatabaseProtocol(ctx).run(database, selection)
        assert result.metadata["leaks"] == ["entire-database"]

    def test_client_receives_everything(self, ctx, workload):
        database, selection = workload
        result = DownloadDatabaseProtocol(ctx).run(database, selection)
        channel = result.metadata["channel"]
        assert channel.client_view.payloads("database-dump")[0] == database.values

    def test_downlink_dominates(self, ctx, workload):
        database, selection = workload
        result = DownloadDatabaseProtocol(ctx).run(database, selection)
        assert result.bytes_down > result.bytes_up
        assert result.bytes_down >= len(database) * 4


class TestYaoBaseline:
    @pytest.fixture(scope="class")
    def yao_result(self):
        generator = WorkloadGenerator("yao-base")
        database = generator.database(8, value_bits=8)
        selection = generator.random_selection(8, 3)
        ctx = ExecutionContext(rng="yao-base")
        result = YaoBaselineProtocol(ctx).run(database, selection)
        return database, selection, result

    def test_correct(self, yao_result):
        database, selection, result = yao_result
        assert result.value == database.select_sum(selection)

    def test_private_but_expensive(self, yao_result):
        database, selection, result = yao_result
        assert result.metadata["leaks"] == []
        assert result.metadata["gate_count"] > 100
        # Bytes: tens of kilobytes for 8 elements, vs ~1 KB homomorphic.
        private = SelectedSumProtocol(ExecutionContext(rng="hom")).run(
            database, selection
        )
        assert result.total_bytes > 10 * private.total_bytes

    def test_fairplay_model_reported(self, yao_result):
        _, _, result = yao_result
        assert result.metadata["fairplay_model_minutes"] == pytest.approx(
            15.0 * 8 / 100
        )

    def test_marks_measured(self, yao_result):
        _, _, result = yao_result
        assert result.metadata["measured"] is True
        assert result.scheme == "yao-garbled-circuit"
