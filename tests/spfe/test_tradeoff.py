"""Tests for the privacy/performance tradeoff protocol (§4 future work)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datastore.database import ServerDatabase
from repro.datastore.workload import WorkloadGenerator
from repro.exceptions import ParameterError
from repro.spfe.context import ExecutionContext
from repro.spfe.selected_sum import SelectedSumProtocol
from repro.spfe.tradeoff import PartialPrivacySumProtocol


class TestCorrectness:
    def test_known_sum(self, ctx):
        db = ServerDatabase([10, 20, 30, 40])
        result = PartialPrivacySumProtocol(ctx, superset_factor=2.0).run(
            db, [1, 0, 0, 1]
        )
        assert result.value == 50

    @settings(max_examples=10, deadline=None)
    @given(st.data())
    def test_random_workloads(self, data):
        n = data.draw(st.integers(2, 60))
        factor = data.draw(st.floats(1.0, 20.0))
        values = data.draw(st.lists(st.integers(0, 999), min_size=n, max_size=n))
        m = data.draw(st.integers(1, n))
        generator = WorkloadGenerator(repr((n, m)))
        bits = generator.random_selection(n, m)
        db = ServerDatabase(values)
        ctx = ExecutionContext(rng=repr((factor, values)))
        result = PartialPrivacySumProtocol(ctx, superset_factor=factor).run(db, bits)
        assert result.value == db.select_sum(bits)


class TestValidation:
    def test_factor_below_one_rejected(self, ctx):
        with pytest.raises(ParameterError):
            PartialPrivacySumProtocol(ctx, superset_factor=0.5)

    def test_weights_rejected(self, ctx):
        db = ServerDatabase([1, 2])
        with pytest.raises(ParameterError):
            PartialPrivacySumProtocol(ctx).run(db, [2, 1])

    def test_empty_selection_rejected(self, ctx):
        db = ServerDatabase([1, 2])
        with pytest.raises(ParameterError):
            PartialPrivacySumProtocol(ctx).run(db, [0, 0])


class TestSupersetSemantics:
    def test_superset_contains_selection(self, ctx, workload):
        database, selection = workload
        protocol = PartialPrivacySumProtocol(ctx, superset_factor=3.0)
        superset = protocol.build_superset(len(database), selection)
        true_indices = {i for i, w in enumerate(selection) if w}
        assert true_indices <= set(superset)

    def test_superset_size(self, ctx, workload):
        database, selection = workload
        m = sum(selection)
        protocol = PartialPrivacySumProtocol(ctx, superset_factor=3.0)
        superset = protocol.build_superset(len(database), selection)
        assert len(superset) == min(len(database), 3 * m)

    def test_factor_one_means_no_decoys(self, ctx, workload):
        database, selection = workload
        result = PartialPrivacySumProtocol(ctx, superset_factor=1.0).run(
            database, selection
        )
        assert result.metadata["anonymity_ratio"] == pytest.approx(1.0)

    def test_leak_declared(self, ctx, workload):
        database, selection = workload
        result = PartialPrivacySumProtocol(ctx).run(database, selection)
        assert result.metadata["leaks"] == ["candidate-superset"]


class TestTradeoffCurve:
    def test_quantified_privacy_metrics(self, ctx, workload):
        database, selection = workload
        m = sum(selection)
        result = PartialPrivacySumProtocol(ctx, superset_factor=4.0).run(
            database, selection
        )
        s = result.metadata["superset_size"]
        assert result.metadata["anonymity_ratio"] == pytest.approx(m / s)
        assert result.metadata["candidate_fraction"] == pytest.approx(
            s / len(database)
        )

    def test_runtime_scales_with_superset(self, workload):
        database, selection = workload
        small = PartialPrivacySumProtocol(
            ExecutionContext(rng="t1"), superset_factor=2.0
        ).run(database, selection)
        large = PartialPrivacySumProtocol(
            ExecutionContext(rng="t2"), superset_factor=8.0
        ).run(database, selection)
        assert small.makespan_s < large.makespan_s

    def test_cheaper_than_full_privacy(self, workload):
        database, selection = workload
        partial = PartialPrivacySumProtocol(
            ExecutionContext(rng="t3"), superset_factor=4.0
        ).run(database, selection)
        full = SelectedSumProtocol(ExecutionContext(rng="t4")).run(
            database, selection
        )
        assert partial.makespan_s < full.makespan_s
        assert partial.total_bytes < full.total_bytes

    def test_degenerates_to_full_protocol_cost(self, workload):
        """superset covering everything == full protocol's compute cost."""
        database, selection = workload
        n, m = len(database), sum(selection)
        huge = PartialPrivacySumProtocol(
            ExecutionContext(rng="t5"), superset_factor=n / m + 1
        ).run(database, selection)
        assert huge.metadata["superset_size"] == n
        assert huge.metadata["candidate_fraction"] == 1.0
