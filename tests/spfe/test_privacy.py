"""Tests for the privacy auditors — the paper's §2 requirements as checks."""

import pytest

from repro.datastore.database import ServerDatabase
from repro.exceptions import PrivacyViolationError
from repro.net.channel import Channel
from repro.net.link import links
from repro.net.wire import Message
from repro.spfe.base import MSG_ENC_INDEX
from repro.spfe.batching import BatchedSelectedSumProtocol
from repro.spfe.combined import CombinedSelectedSumProtocol
from repro.spfe.context import ExecutionContext
from repro.spfe.preprocessing import PreprocessedSelectedSumProtocol
from repro.spfe.privacy import (
    audit_client_privacy,
    audit_database_privacy,
    audit_result,
)
from repro.spfe.selected_sum import SelectedSumProtocol
from repro.spfe.tradeoff import PartialPrivacySumProtocol


ALL_PRIVATE_VARIANTS = [
    SelectedSumProtocol,
    BatchedSelectedSumProtocol,
    PreprocessedSelectedSumProtocol,
    CombinedSelectedSumProtocol,
]


class TestPrivateVariantsPass:
    @pytest.mark.parametrize("protocol_cls", ALL_PRIVATE_VARIANTS)
    def test_simulated_scheme_passes(self, protocol_cls, workload):
        database, selection = workload
        ctx = ExecutionContext(rng="audit")
        result = protocol_cls(ctx).run(database, selection)
        audit_result(result, selection)  # no raise

    def test_real_paillier_passes(self, small_workload):
        from repro.crypto.paillier import PaillierScheme

        database, selection = small_workload
        ctx = ExecutionContext(
            scheme=PaillierScheme(), key_bits=128, mode="measured", rng="ap"
        )
        result = SelectedSumProtocol(ctx).run(database, selection)
        audit_result(result, selection)

    def test_multiclient_channels_pass_per_slice(self, workload):
        from repro.spfe.multiclient import MultiClientSelectedSumProtocol

        database, selection = workload
        ctx = ExecutionContext(rng="mc-audit")
        result = MultiClientSelectedSumProtocol(ctx, num_clients=2).run(
            database, selection
        )
        half = len(database) // 2
        slices = [selection[:half], selection[half:]]
        for channel, sub_selection in zip(result.metadata["channels"], slices):
            audit_client_privacy(channel, sub_selection)


class TestViolationsDetected:
    def _channel_with(self, *messages):
        channel = Channel(links.loopback)
        for message in messages:
            channel.client_send(message)
            channel.server_recv()
        return channel

    def test_plaintext_bits_detected(self):
        channel = self._channel_with(
            Message(MSG_ENC_INDEX, 1, 136, "client"),
            Message(MSG_ENC_INDEX, 0, 136, "client"),
        )
        with pytest.raises(PrivacyViolationError):
            audit_client_privacy(channel, [1, 0])

    def test_plaintext_vector_detected(self):
        channel = self._channel_with(
            Message(MSG_ENC_INDEX, (1, 0, 1), 408, "client")
        )
        with pytest.raises(PrivacyViolationError):
            audit_client_privacy(channel, [1, 0, 1])

    def test_ciphertext_reuse_detected(self):
        big = 1 << 900  # plausible 1024-bit ciphertext value
        channel = self._channel_with(
            Message(MSG_ENC_INDEX, big, 136, "client"),
            Message(MSG_ENC_INDEX, big, 136, "client"),
        )
        with pytest.raises(PrivacyViolationError):
            audit_client_privacy(channel, [1, 1])

    def test_selection_dependent_count_detected(self):
        big = 1 << 900
        channel = self._channel_with(Message(MSG_ENC_INDEX, big, 136, "client"))
        with pytest.raises(PrivacyViolationError):
            audit_client_privacy(channel, [1, 0, 0])  # n=3, only 1 sent

    def test_unexpected_kind_detected(self):
        channel = self._channel_with(
            Message("selection-hints", (1 << 900,), 16, "client")
        )
        with pytest.raises(PrivacyViolationError):
            audit_client_privacy(channel, [])

    def test_client_overdelivery_detected(self):
        channel = Channel(links.loopback)
        channel.server_send(Message("result", 1 << 900, 136, "server"))
        channel.server_send(Message("result", 1 << 899, 136, "server"))
        channel.client_recv()
        channel.client_recv()
        with pytest.raises(PrivacyViolationError):
            audit_database_privacy(channel, expected_results=1)

    def test_vector_to_client_detected(self):
        channel = Channel(links.loopback)
        channel.server_send(Message("result", (1, 2, 3), 24, "server"))
        channel.client_recv()
        with pytest.raises(PrivacyViolationError):
            audit_database_privacy(channel, expected_results=1)

    def test_declared_leaks_fail_audit_result(self, ctx, workload):
        database, selection = workload
        result = PartialPrivacySumProtocol(ctx).run(database, selection)
        with pytest.raises(PrivacyViolationError):
            audit_result(result, selection)

    def test_missing_channel_fails(self):
        from repro.spfe.result import SumRunResult
        from repro.timing.report import TimingBreakdown

        result = SumRunResult(
            value=0, n=1, m=0, breakdown=TimingBreakdown(), makespan_s=0,
            bytes_up=0, bytes_down=0, messages=0, scheme="x", link="y",
            protocol="z",
        )
        with pytest.raises(PrivacyViolationError):
            audit_result(result, [0])
