"""Tests for the multi-client protocol — paper §3.5 / Figures 8-9."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.paillier import PaillierScheme
from repro.datastore.database import ServerDatabase
from repro.datastore.workload import WorkloadGenerator
from repro.exceptions import ParameterError, ProtocolError
from repro.spfe.context import ExecutionContext
from repro.spfe.multiclient import (
    PAPER_CLIENT_COUNT,
    MultiClientSelectedSumProtocol,
)
from repro.spfe.selected_sum import SelectedSumProtocol


class TestCorrectness:
    def test_known_sum(self, ctx):
        db = ServerDatabase([10, 20, 30, 40, 50, 60])
        result = MultiClientSelectedSumProtocol(ctx, num_clients=3).run(
            db, [1, 0, 1, 0, 1, 0]
        )
        assert result.value == 90

    def test_uneven_split(self, ctx):
        db = ServerDatabase([1, 2, 3, 4, 5, 6, 7])  # 7 elements, 3 clients
        result = MultiClientSelectedSumProtocol(ctx, num_clients=3).run(
            db, [1] * 7
        )
        assert result.value == 28

    def test_empty_selection(self, ctx):
        db = ServerDatabase([5, 6, 7, 8])
        result = MultiClientSelectedSumProtocol(ctx, num_clients=2).run(
            db, [0, 0, 0, 0]
        )
        assert result.value == 0

    def test_selection_concentrated_in_one_slice(self, ctx):
        db = ServerDatabase([9] * 9)
        selection = [1, 1, 1] + [0] * 6  # all in client 0's slice
        result = MultiClientSelectedSumProtocol(ctx, num_clients=3).run(
            db, selection
        )
        assert result.value == 27

    @settings(max_examples=12, deadline=None)
    @given(st.data())
    def test_random_workloads(self, data):
        n = data.draw(st.integers(4, 60))
        k = data.draw(st.integers(2, min(6, n)))
        values = data.draw(
            st.lists(st.integers(0, 2**32 - 1), min_size=n, max_size=n)
        )
        bits = data.draw(st.lists(st.integers(0, 1), min_size=n, max_size=n))
        db = ServerDatabase(values)
        ctx = ExecutionContext(rng=repr((k, values)))
        result = MultiClientSelectedSumProtocol(ctx, num_clients=k).run(db, bits)
        assert result.value == db.select_sum(bits)

    def test_with_real_paillier(self):
        generator = WorkloadGenerator("mc-real")
        db = generator.database(12, value_bits=16)
        selection = generator.random_selection(12, 5)
        ctx = ExecutionContext(
            scheme=PaillierScheme(), key_bits=192, mode="measured", rng="mc"
        )
        result = MultiClientSelectedSumProtocol(ctx, num_clients=3).run(
            db, selection
        )
        assert result.value == db.select_sum(selection)


class TestValidation:
    def test_needs_two_clients(self, ctx):
        with pytest.raises(ParameterError):
            MultiClientSelectedSumProtocol(ctx, num_clients=1)

    def test_more_clients_than_elements(self, ctx):
        db = ServerDatabase([1, 2])
        with pytest.raises(ProtocolError):
            MultiClientSelectedSumProtocol(ctx, num_clients=3).run(db, [1, 1])

    def test_sigma_validated(self, ctx):
        with pytest.raises(ParameterError):
            MultiClientSelectedSumProtocol(ctx, sigma=0)

    def test_blinding_capacity_checked(self):
        # Tiny keys cannot hold the blinded partial sums.
        ctx = ExecutionContext(key_bits=64, rng="tiny")
        db = ServerDatabase([2**32 - 1] * 4)
        with pytest.raises(ProtocolError):
            MultiClientSelectedSumProtocol(ctx, num_clients=2).run(db, [1] * 4)


class TestBlinding:
    def test_blinds_cancel(self, ctx):
        """The protocol itself proves sum(R_i) ≡ 0 (mod B) by returning
        the correct value, but check the modulus bookkeeping too."""
        db = ServerDatabase([7] * 10)
        protocol = MultiClientSelectedSumProtocol(ctx, num_clients=2)
        result = protocol.run(db, [1] * 10)
        assert result.value == 70
        # sigma=40 headroom over 32-bit values and a 10-element db.
        assert result.metadata["blind_modulus_bits"] >= 32 + 4 + 40

    def test_partial_sums_are_blinded(self, ctx):
        """Statistical hiding: what circulates in the combination ring is
        the *blinded* partial, not the true partial sum (a match would
        have probability ~2^-40)."""
        values = [100, 200, 300, 400]
        db = ServerDatabase(values)
        result = MultiClientSelectedSumProtocol(ctx, num_clients=2).run(
            db, [1, 1, 1, 1]
        )
        assert result.value == 1000
        ring = result.metadata["ring_channels"]
        # The first forward hop carries client 0's blinded partial; the
        # true partial of slice [100, 200] is 300.
        first_hop = ring[0].server_view.payloads("ring-forward")
        assert first_hop and first_hop[0] != 300

    def test_combining_modulus_grows_with_n(self, ctx):
        small = MultiClientSelectedSumProtocol(ctx, num_clients=2)
        assert small._combining_modulus(
            ServerDatabase([1] * 4)
        ) < small._combining_modulus(ServerDatabase([1] * 4000))


class TestTiming:
    def _pair(self, n=3000, k=PAPER_CLIENT_COUNT, seed="mc"):
        generator = WorkloadGenerator(seed)
        database = generator.database(n)
        selection = generator.random_selection(n, n // 20)
        env_kwargs = dict(rng=seed)
        single = SelectedSumProtocol(ExecutionContext(**env_kwargs)).run(
            database, selection
        )
        multi = MultiClientSelectedSumProtocol(
            ExecutionContext(**env_kwargs), num_clients=k
        ).run(database, selection)
        return single, multi

    def test_paper_speedup_at_k3(self):
        """Figure 9: ~2.99x at k = 3 (k-fold minus combining overhead)."""
        single, multi = self._pair()
        speedup = single.makespan_s / multi.makespan_s
        assert 2.8 < speedup < 3.05

    def test_speedup_scales_with_k(self):
        _, multi2 = self._pair(k=2, seed="mc2")
        _, multi5 = self._pair(k=5, seed="mc5")
        assert multi5.makespan_s < multi2.makespan_s

    def test_combine_overhead_positive_but_small(self):
        _, multi = self._pair()
        assert 0 < multi.breakdown.combine_s < 0.05 * multi.makespan_s

    def test_total_client_work_preserved(self):
        """Parallelism splits the work; it does not shrink it."""
        single, multi = self._pair()
        assert multi.breakdown.client_encrypt_s == pytest.approx(
            single.breakdown.client_encrypt_s, rel=0.01
        )

    def test_metadata(self, ctx, workload):
        database, selection = workload
        result = MultiClientSelectedSumProtocol(ctx, num_clients=4).run(
            database, selection
        )
        assert result.metadata["num_clients"] == 4
        assert len(result.metadata["channels"]) == 4
        assert result.protocol == "multiclient"
