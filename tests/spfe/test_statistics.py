"""Tests for the private statistics layer against numpy ground truth."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datastore.database import ServerDatabase
from repro.datastore.workload import WorkloadGenerator
from repro.exceptions import ParameterError
from repro.spfe.combined import CombinedSelectedSumProtocol
from repro.spfe.context import ExecutionContext
from repro.spfe.statistics import (
    PrivateStatisticsClient,
    elementwise_product,
)


@pytest.fixture(scope="module")
def stats_workload():
    generator = WorkloadGenerator("stats")
    database = generator.database(300, value_bits=16)
    selection = generator.random_selection(300, 50)
    return database, selection


@pytest.fixture()
def stats(ctx):
    return PrivateStatisticsClient(ctx)


def selected_array(database, selection):
    values = np.array(database.values, dtype=float)
    mask = np.array(selection, dtype=bool)
    return values[mask]


class TestSumAndMean:
    def test_sum(self, stats, stats_workload):
        database, selection = stats_workload
        result = stats.sum(database, selection)
        assert result.value == selected_array(database, selection).sum()
        assert result.name == "sum"
        assert len(result.runs) == 1

    def test_mean(self, stats, stats_workload):
        database, selection = stats_workload
        result = stats.mean(database, selection)
        assert result.value == pytest.approx(
            selected_array(database, selection).mean()
        )

    def test_count_is_client_side(self, stats, stats_workload):
        _, selection = stats_workload
        assert stats.count(selection) == sum(selection)

    def test_empty_selection_rejected(self, stats, stats_workload):
        database, _ = stats_workload
        with pytest.raises(ParameterError):
            stats.mean(database, [0] * len(database))


class TestVarianceFamily:
    def test_population_variance(self, stats, stats_workload):
        database, selection = stats_workload
        result = stats.variance(database, selection)
        expected = selected_array(database, selection).var()
        assert result.value == pytest.approx(expected)
        assert len(result.runs) == 2  # sum + squared sum

    def test_sample_variance(self, stats, stats_workload):
        database, selection = stats_workload
        result = stats.variance(database, selection, ddof=1)
        expected = selected_array(database, selection).var(ddof=1)
        assert result.value == pytest.approx(expected)

    def test_std(self, stats, stats_workload):
        database, selection = stats_workload
        result = stats.std(database, selection)
        assert result.value == pytest.approx(
            selected_array(database, selection).std()
        )

    def test_variance_single_element_ddof1_rejected(self, stats):
        db = ServerDatabase([5, 6])
        with pytest.raises(ParameterError):
            stats.variance(db, [1, 0], ddof=1)

    def test_zero_variance(self, stats):
        db = ServerDatabase([7, 7, 7, 9])
        result = stats.variance(db, [1, 1, 1, 0])
        assert result.value == pytest.approx(0.0)
        assert stats.std(db, [1, 1, 1, 0]).value == 0.0


class TestWeighted:
    def test_weighted_sum(self, stats):
        db = ServerDatabase([10, 20, 30])
        result = stats.weighted_sum(db, [1, 2, 3])
        assert result.value == 10 + 40 + 90

    def test_weighted_average(self, stats):
        db = ServerDatabase([10, 20, 30])
        result = stats.weighted_average(db, [1, 2, 3])
        assert result.value == pytest.approx(140 / 6)

    def test_zero_weights_rejected(self, stats):
        db = ServerDatabase([1, 2])
        with pytest.raises(ParameterError):
            stats.weighted_average(db, [0, 0])

    @settings(max_examples=10, deadline=None)
    @given(st.data())
    def test_weighted_average_matches_numpy(self, data):
        n = data.draw(st.integers(2, 40))
        values = data.draw(st.lists(st.integers(0, 1000), min_size=n, max_size=n))
        weights = data.draw(st.lists(st.integers(0, 9), min_size=n, max_size=n))
        if sum(weights) == 0:
            weights[0] = 1
        db = ServerDatabase(values)
        stats = PrivateStatisticsClient(ExecutionContext(rng=repr(values)))
        result = stats.weighted_average(db, weights)
        assert result.value == pytest.approx(
            np.average(values, weights=weights)
        )


class TestCovariance:
    def test_elementwise_product(self):
        x = ServerDatabase([2, 3], value_bits=8)
        y = ServerDatabase([5, 7], value_bits=8)
        product = elementwise_product(x, y)
        assert product.values == (10, 21)
        assert product.value_bits == 16

    def test_elementwise_product_validates(self):
        from repro.exceptions import DatabaseError

        with pytest.raises(DatabaseError):
            elementwise_product(ServerDatabase([1]), ServerDatabase([1, 2]))

    def test_covariance(self, stats):
        generator = WorkloadGenerator("cov")
        x = generator.database(100, value_bits=12)
        y = generator.database(101, value_bits=12)
        y = ServerDatabase(y.values[:100], value_bits=12)
        selection = generator.random_selection(100, 30)
        result = stats.covariance(x, y, selection)
        mask = np.array(selection, dtype=bool)
        xa = np.array(x.values, dtype=float)[mask]
        ya = np.array(y.values, dtype=float)[mask]
        expected = np.cov(xa, ya, ddof=0)[0][1]
        assert result.value == pytest.approx(expected)
        assert len(result.runs) == 3

    def test_correlation_of_identical_columns(self, stats):
        generator = WorkloadGenerator("corr")
        x = generator.database(80, value_bits=12)
        selection = generator.random_selection(80, 25)
        result = stats.correlation(x, x, selection)
        assert result.value == pytest.approx(1.0)

    def test_correlation_zero_variance_rejected(self, stats):
        from repro.exceptions import ProtocolError

        x = ServerDatabase([5, 5, 5])
        with pytest.raises(ProtocolError):
            stats.correlation(x, x, [1, 1, 1])


class TestComposition:
    def test_aggregated_accounting(self, stats, stats_workload):
        database, selection = stats_workload
        result = stats.variance(database, selection)
        total = result.total_breakdown
        single = result.runs[0].breakdown
        assert total.client_encrypt_s == pytest.approx(
            2 * single.client_encrypt_s
        )
        assert result.makespan_s == pytest.approx(
            sum(r.makespan_s for r in result.runs)
        )
        assert result.total_bytes == sum(r.total_bytes for r in result.runs)

    def test_pluggable_protocol(self, stats_workload):
        """Statistics run identically over the optimized pipeline."""
        database, selection = stats_workload
        ctx = ExecutionContext(rng="plug")
        fast_stats = PrivateStatisticsClient(
            ctx, protocol_factory=lambda c: CombinedSelectedSumProtocol(c)
        )
        plain_stats = PrivateStatisticsClient(ExecutionContext(rng="plug2"))
        fast = fast_stats.mean(database, selection)
        plain = plain_stats.mean(database, selection)
        assert fast.value == pytest.approx(plain.value)
        assert fast.runs[0].makespan_s < plain.runs[0].makespan_s
