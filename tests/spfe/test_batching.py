"""Tests for the batched (pipelined) protocol — paper §3.2."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datastore.database import ServerDatabase
from repro.datastore.workload import WorkloadGenerator
from repro.exceptions import ParameterError
from repro.spfe.batching import PAPER_BATCH_SIZE, BatchedSelectedSumProtocol
from repro.spfe.context import ExecutionContext
from repro.spfe.selected_sum import SelectedSumProtocol
from repro.timing.clock import PipelineSchedule
from repro.timing.costmodel import Op


class TestCorrectness:
    def test_known_sum(self, ctx):
        db = ServerDatabase([10, 20, 30, 40, 50])
        result = BatchedSelectedSumProtocol(ctx, batch_size=2).run(
            db, [1, 1, 0, 0, 1]
        )
        assert result.value == 80

    def test_batch_size_one(self, ctx, small_workload):
        database, selection = small_workload
        result = BatchedSelectedSumProtocol(ctx, batch_size=1).run(
            database, selection
        )
        assert result.value == database.select_sum(selection)

    def test_batch_larger_than_database(self, ctx, small_workload):
        database, selection = small_workload
        result = BatchedSelectedSumProtocol(ctx, batch_size=10_000).run(
            database, selection
        )
        assert result.value == database.select_sum(selection)

    def test_paper_batch_size_constant(self):
        assert PAPER_BATCH_SIZE == 100

    @settings(max_examples=15, deadline=None)
    @given(st.integers(1, 200), st.data())
    def test_any_batch_size_correct(self, batch, data):
        n = data.draw(st.integers(1, 80))
        values = data.draw(st.lists(st.integers(0, 1000), min_size=n, max_size=n))
        bits = data.draw(st.lists(st.integers(0, 1), min_size=n, max_size=n))
        db = ServerDatabase(values)
        ctx = ExecutionContext(rng=repr((batch, values)))
        result = BatchedSelectedSumProtocol(ctx, batch_size=batch).run(db, bits)
        assert result.value == db.select_sum(bits)


class TestValidation:
    def test_rejects_bad_batch_size(self, ctx):
        with pytest.raises(ParameterError):
            BatchedSelectedSumProtocol(ctx, batch_size=0)


class TestPipelineTiming:
    def _pair(self, n=2000, batch=100, seed="pipe"):
        generator = WorkloadGenerator(seed)
        database = generator.database(n)
        selection = generator.random_selection(n, n // 20)
        plain = SelectedSumProtocol(ExecutionContext(rng=seed)).run(
            database, selection
        )
        batched = BatchedSelectedSumProtocol(
            ExecutionContext(rng=seed), batch_size=batch
        ).run(database, selection)
        return plain, batched

    def test_batching_reduces_makespan(self):
        plain, batched = self._pair()
        assert batched.makespan_s < plain.makespan_s

    def test_paper_reduction_magnitude(self):
        """The paper reports ~10% reduction with batch size 100."""
        plain, batched = self._pair(n=5000, batch=PAPER_BATCH_SIZE)
        reduction = 1 - batched.makespan_s / plain.makespan_s
        assert 0.07 < reduction < 0.13

    def test_makespan_at_least_dominant_component(self):
        _, batched = self._pair()
        b = batched.breakdown
        dominant = max(b.client_encrypt_s, b.server_compute_s, b.communication_s)
        assert batched.makespan_s >= dominant

    def test_makespan_below_sequential_sum(self):
        _, batched = self._pair()
        assert batched.makespan_s < batched.breakdown.total_online_s()

    def test_component_totals_unchanged_by_batching(self):
        """Batching overlaps work; it does not remove compute work."""
        plain, batched = self._pair()
        assert batched.breakdown.client_encrypt_s == pytest.approx(
            plain.breakdown.client_encrypt_s
        )
        assert batched.breakdown.server_compute_s == pytest.approx(
            plain.breakdown.server_compute_s
        )

    def test_batching_reduces_message_count_and_bytes(self):
        plain, batched = self._pair()
        assert batched.messages < plain.messages
        assert batched.bytes_up < plain.bytes_up

    def test_agrees_with_pipeline_recurrence(self):
        """Cross-validate the event-driven channel timing against the
        closed-form flow-shop recurrence of PipelineSchedule."""
        n, batch, seed = 1000, 50, "xval"
        generator = WorkloadGenerator(seed)
        database = generator.database(n)
        selection = generator.random_selection(n, 10)
        ctx = ExecutionContext(rng=seed)
        result = BatchedSelectedSumProtocol(ctx, batch_size=batch).run(
            database, selection
        )

        batches = n // batch
        enc = batch * ctx.op_cost("client", Op.ENCRYPT)
        wire = ctx.link.seconds_per_message(batch * 128 + 8)
        srv = batch * ctx.op_cost("server", Op.WEIGHTED_STEP)
        schedule = PipelineSchedule(
            [enc] * batches, [wire] * batches, [srv] * batches
        )
        # Event-driven makespan = recurrence + result return + decrypt
        # + pk-message and latency slack (small constants).
        tail = (
            ctx.op_cost("client", Op.DECRYPT)
            + ctx.link.seconds_per_message(136)
            + 2 * ctx.link.latency_s
        )
        lower = schedule.makespan()
        upper = schedule.makespan() + tail + 0.01
        assert lower <= result.makespan_s <= upper

    def test_metadata_records_batch_size(self, ctx, small_workload):
        database, selection = small_workload
        result = BatchedSelectedSumProtocol(ctx, batch_size=7).run(
            database, selection
        )
        assert result.metadata["batch_size"] == 7
