"""Tests for the closed-form cost estimator: exact agreement with the
event-driven engine across protocols, sizes, environments, and keys."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datastore.workload import WorkloadGenerator
from repro.exceptions import ParameterError
from repro.experiments.environments import long_distance, short_distance
from repro.spfe.batching import BatchedSelectedSumProtocol
from repro.spfe.combined import CombinedSelectedSumProtocol
from repro.spfe.context import ExecutionContext
from repro.spfe.estimator import ProtocolCostEstimator
from repro.spfe.multiclient import MultiClientSelectedSumProtocol
from repro.spfe.preprocessing import PreprocessedSelectedSumProtocol
from repro.spfe.selected_sum import SelectedSumProtocol


def engine_run(protocol_cls, n, env=short_distance, seed="est", **kwargs):
    generator = WorkloadGenerator(seed)
    database = generator.database(n)
    selection = generator.random_selection(n, max(1, n // 20))
    return protocol_cls(env.context(seed=seed), **kwargs).run(database, selection)


class TestAgreementWithEngine:
    def test_plain(self):
        n = 2500
        estimate = ProtocolCostEstimator(short_distance.context()).plain(n)
        result = engine_run(SelectedSumProtocol, n)
        assert estimate.makespan_s == pytest.approx(result.makespan_s, rel=1e-9)
        assert estimate.bytes_up == result.bytes_up
        assert estimate.bytes_down == result.bytes_down
        assert estimate.breakdown.client_encrypt_s == pytest.approx(
            result.breakdown.client_encrypt_s
        )

    def test_preprocessed(self):
        n = 2500
        estimate = ProtocolCostEstimator(short_distance.context()).preprocessed(n)
        result = engine_run(PreprocessedSelectedSumProtocol, n)
        assert estimate.makespan_s == pytest.approx(result.makespan_s, rel=1e-9)
        assert estimate.breakdown.offline_precompute_s == pytest.approx(
            result.breakdown.offline_precompute_s
        )

    @pytest.mark.parametrize("batch", [1, 50, 100, 999])
    def test_batched(self, batch):
        n = 2000
        estimate = ProtocolCostEstimator(short_distance.context()).batched(n, batch)
        result = engine_run(BatchedSelectedSumProtocol, n, batch_size=batch)
        assert estimate.makespan_s == pytest.approx(result.makespan_s, rel=1e-9)
        assert estimate.bytes_up == result.bytes_up

    def test_combined(self):
        n = 2000
        estimate = ProtocolCostEstimator(short_distance.context()).combined(n, 100)
        result = engine_run(CombinedSelectedSumProtocol, n, batch_size=100)
        assert estimate.makespan_s == pytest.approx(result.makespan_s, rel=1e-9)

    @pytest.mark.parametrize("k", [2, 3, 5])
    def test_multiclient(self, k):
        n = 2000
        estimate = ProtocolCostEstimator(short_distance.context()).multiclient(n, k)
        result = engine_run(MultiClientSelectedSumProtocol, n, num_clients=k)
        assert estimate.makespan_s == pytest.approx(result.makespan_s, rel=1e-9)
        assert estimate.bytes_up == result.bytes_up
        assert estimate.bytes_down == result.bytes_down

    def test_long_distance_environment(self):
        n = 1500
        estimate = ProtocolCostEstimator(long_distance.context()).plain(n)
        result = engine_run(SelectedSumProtocol, n, env=long_distance)
        assert estimate.makespan_s == pytest.approx(result.makespan_s, rel=1e-9)

    def test_key_size(self):
        n = 1500
        ctx = short_distance.context(key_bits=1024)
        estimate = ProtocolCostEstimator(ctx).plain(n)
        generator = WorkloadGenerator("kb")
        database = generator.database(n)
        selection = generator.random_selection(n, 10)
        result = SelectedSumProtocol(
            short_distance.context(key_bits=1024, seed="kb")
        ).run(database, selection)
        assert estimate.makespan_s == pytest.approx(result.makespan_s, rel=1e-9)
        assert estimate.bytes_up == result.bytes_up

    @settings(max_examples=10, deadline=None)
    @given(st.integers(50, 3000), st.integers(1, 200))
    def test_batched_agreement_property(self, n, batch):
        estimate = ProtocolCostEstimator(short_distance.context()).batched(n, batch)
        result = engine_run(
            BatchedSelectedSumProtocol, n, seed="prop-%d" % n, batch_size=batch
        )
        assert estimate.makespan_s == pytest.approx(result.makespan_s, rel=1e-9)
        assert estimate.bytes_up == result.bytes_up


class TestEstimatorProperties:
    def test_validation(self):
        estimator = ProtocolCostEstimator()
        with pytest.raises(ParameterError):
            estimator.plain(0)
        with pytest.raises(ParameterError):
            estimator.batched(10, 0)
        with pytest.raises(ParameterError):
            estimator.multiclient(10, 1)

    def test_paper_headline_prediction(self):
        """The estimator alone predicts the paper's Figure 2 headline."""
        estimate = ProtocolCostEstimator(short_distance.context()).plain(100_000)
        assert 18 < estimate.online_minutes() < 23

    def test_planning_scale(self):
        """The planning use case: predict a 10-million-row query without
        materializing anything."""
        estimator = ProtocolCostEstimator(short_distance.context())
        plain = estimator.plain(10_000_000)
        combined = estimator.combined(10_000_000)
        assert plain.online_minutes() > 1000  # >1.5 days on 2004 hardware
        assert combined.online_minutes() < 0.1 * plain.online_minutes()

    def test_monotone_in_n(self):
        estimator = ProtocolCostEstimator(short_distance.context())
        assert (
            estimator.plain(1000).makespan_s
            < estimator.plain(2000).makespan_s
            < estimator.plain(4000).makespan_s
        )
