"""Tests for the run-result record itself."""

import pytest

from repro.spfe.result import SumRunResult
from repro.timing.report import TimingBreakdown


@pytest.fixture()
def result():
    return SumRunResult(
        value=12345,
        n=1000,
        m=50,
        breakdown=TimingBreakdown(
            client_encrypt_s=120.0,
            server_compute_s=30.0,
            communication_s=6.0,
            client_decrypt_s=0.01,
        ),
        makespan_s=156.01,
        bytes_up=136_072,
        bytes_down=136,
        messages=1002,
        scheme="simulated-paillier",
        link="cluster-gigabit",
        protocol="plain",
    )


class TestVerify:
    def test_pass_returns_self(self, result):
        assert result.verify(12345) is result

    def test_mismatch_raises_with_context(self, result):
        with pytest.raises(AssertionError) as excinfo:
            result.verify(0)
        assert "plain" in str(excinfo.value)
        assert "12345" in str(excinfo.value)


class TestDerivedViews:
    def test_total_bytes(self, result):
        assert result.total_bytes == 136_208

    def test_online_minutes(self, result):
        assert result.online_minutes() == pytest.approx(2.6002, rel=1e-4)

    def test_component_minutes(self, result):
        minutes = result.component_minutes()
        assert minutes["client_encrypt"] == pytest.approx(2.0)
        assert minutes["server_compute"] == pytest.approx(0.5)
        assert minutes["communication"] == pytest.approx(0.1)

    def test_summary_is_one_line_and_complete(self, result):
        text = result.summary()
        assert "\n" not in text
        for fragment in ("plain", "n=1000", "m=50", "sum=12345"):
            assert fragment in text

    def test_metadata_defaults_empty(self, result):
        assert result.metadata == {}
