"""Shared fixtures for the protocol tests.

Protocol tests default to the simulated scheme (fast) with a modelled
cluster context; the integration suite re-runs the key paths with real
Paillier in measured mode.
"""

import pytest

from repro.datastore.workload import WorkloadGenerator
from repro.spfe.context import ExecutionContext


@pytest.fixture()
def ctx():
    return ExecutionContext(rng="spfe-tests")


@pytest.fixture(scope="module")
def workload():
    generator = WorkloadGenerator("spfe-tests")
    database = generator.database(500)
    selection = generator.random_selection(500, 40)
    return database, selection


@pytest.fixture(scope="module")
def small_workload():
    generator = WorkloadGenerator("spfe-small")
    database = generator.database(24, value_bits=16)
    selection = generator.random_selection(24, 7)
    return database, selection
