"""Tests for the distributed multi-database protocol."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.paillier import PaillierScheme
from repro.datastore.database import ServerDatabase
from repro.datastore.workload import WorkloadGenerator
from repro.exceptions import ParameterError, ProtocolError
from repro.spfe.context import ExecutionContext
from repro.spfe.multidatabase import DistributedSelectedSumProtocol
from repro.spfe.selected_sum import SelectedSumProtocol


def make_partitions(seed="md", sizes=(300, 200, 250), value_bits=32):
    generator = WorkloadGenerator(seed)
    partitions = [
        ServerDatabase(generator.database(size, value_bits).values, value_bits)
        for size in sizes
    ]
    total = sum(sizes)
    selection = generator.random_selection(total, total // 10)
    combined = [v for db in partitions for v in db.values]
    expected = sum(v * s for v, s in zip(combined, selection))
    return partitions, selection, expected


class TestCorrectness:
    @pytest.mark.parametrize("hide", [False, True])
    def test_three_servers(self, ctx, hide):
        partitions, selection, expected = make_partitions()
        result = DistributedSelectedSumProtocol(
            ctx, hide_partials=hide
        ).run_distributed(partitions, selection)
        assert result.value == expected
        assert result.metadata["num_servers"] == 3
        assert result.metadata["hide_partials"] is hide

    def test_uneven_partitions(self, ctx):
        partitions, selection, expected = make_partitions(sizes=(1, 500, 7))
        result = DistributedSelectedSumProtocol(ctx).run_distributed(
            partitions, selection
        )
        assert result.value == expected

    def test_real_paillier_both_modes(self):
        partitions = [
            ServerDatabase([1, 2, 3], value_bits=8),
            ServerDatabase([4, 5], value_bits=8),
        ]
        selection = [1, 0, 1, 1, 1]
        for hide in (False, True):
            ctx = ExecutionContext(
                scheme=PaillierScheme(), key_bits=192, mode="measured",
                rng="md-%s" % hide,
            )
            result = DistributedSelectedSumProtocol(
                ctx, hide_partials=hide
            ).run_distributed(partitions, selection)
            assert result.value == 13

    @settings(max_examples=10, deadline=None)
    @given(st.data())
    def test_random_partitionings(self, data):
        k = data.draw(st.integers(2, 5))
        sizes = data.draw(st.lists(st.integers(1, 30), min_size=k, max_size=k))
        partitions, selection, expected = make_partitions(
            seed="rp-%s" % sizes, sizes=tuple(sizes)
        )
        ctx = ExecutionContext(rng=repr(sizes))
        result = DistributedSelectedSumProtocol(
            ctx, hide_partials=bool(k % 2)
        ).run_distributed(partitions, selection)
        assert result.value == expected


class TestValidation:
    def test_needs_two_servers(self, ctx):
        db = ServerDatabase([1, 2, 3])
        with pytest.raises(ParameterError):
            DistributedSelectedSumProtocol(ctx).run_distributed([db], [1, 0, 1])

    def test_mismatched_value_bits(self, ctx):
        a = ServerDatabase([1], value_bits=8)
        b = ServerDatabase([1], value_bits=16)
        with pytest.raises(ProtocolError):
            DistributedSelectedSumProtocol(ctx).run_distributed([a, b], [1, 1])

    def test_selection_length(self, ctx):
        a = ServerDatabase([1, 2])
        b = ServerDatabase([3])
        with pytest.raises(ParameterError):
            DistributedSelectedSumProtocol(ctx).run_distributed([a, b], [1, 1])

    def test_run_requires_distributed_entry_point(self, ctx):
        with pytest.raises(ProtocolError):
            DistributedSelectedSumProtocol(ctx).run(ServerDatabase([1]), [1])

    def test_sigma_validated(self, ctx):
        with pytest.raises(ParameterError):
            DistributedSelectedSumProtocol(ctx, sigma=0)


class TestPartialHiding:
    def test_open_mode_replies_decrypt_to_partials(self):
        """Without hiding, each reply is exactly the server's subtotal."""
        scheme = PaillierScheme()
        ctx = ExecutionContext(scheme=scheme, key_bits=192, mode="measured", rng="o")
        partitions = [
            ServerDatabase([10, 20], value_bits=8),
            ServerDatabase([30, 40], value_bits=8),
        ]
        protocol = DistributedSelectedSumProtocol(ctx, hide_partials=False)
        result = protocol.run_distributed(partitions, [1, 1, 1, 1])
        assert result.value == 100
        # The channels carry the replies; decryptable individually here
        # because the test owns both sides.
        channels = result.metadata["channels"]
        assert len(channels) == 2

    def test_blinded_replies_differ_from_partials(self, ctx):
        partitions = [
            ServerDatabase([100, 200], value_bits=16),
            ServerDatabase([300, 400], value_bits=16),
        ]
        protocol = DistributedSelectedSumProtocol(ctx, hide_partials=True)
        result = protocol.run_distributed(partitions, [1, 1, 1, 1])
        assert result.value == 1000
        # In the simulated scheme we can read the reply plaintexts: they
        # must be blinded (≠ 300 / 700), while still summing correctly.
        for channel, partial in zip(result.metadata["channels"], (300, 700)):
            reply = channel.client_view.payloads("result")[0]
            assert reply.plaintext != partial

    def test_blind_coordination_accounted(self, ctx):
        partitions, selection, _ = make_partitions()
        hidden = DistributedSelectedSumProtocol(
            ctx, hide_partials=True
        ).run_distributed(partitions, selection)
        assert hidden.metadata["blind_coordination_bytes"] > 0
        open_run = DistributedSelectedSumProtocol(
            ExecutionContext(rng="open"), hide_partials=False
        ).run_distributed(partitions, selection)
        assert open_run.metadata["blind_coordination_bytes"] == 0


class TestTiming:
    def test_servers_run_in_parallel(self):
        """k servers over equal slices: makespan well below the
        single-server protocol's (server work and transfers overlap)."""
        generator = WorkloadGenerator("par")
        n = 3000
        combined = generator.database(n)
        selection = generator.random_selection(n, 100)
        partitions = [
            ServerDatabase(combined.values[i : i + n // 3])
            for i in range(0, n, n // 3)
        ]
        single = SelectedSumProtocol(ExecutionContext(rng="s")).run(
            combined, selection
        )
        distributed = DistributedSelectedSumProtocol(
            ExecutionContext(rng="d")
        ).run_distributed(partitions, selection)
        assert distributed.value == single.value
        # Encryption is identical (client does all of it either way);
        # the savings come from overlapping the k server passes.
        saved = single.makespan_s - distributed.makespan_s
        assert saved > 0.5 * single.breakdown.server_compute_s

    def test_total_server_work_preserved(self, ctx):
        partitions, selection, _ = make_partitions()
        distributed = DistributedSelectedSumProtocol(ctx).run_distributed(
            partitions, selection
        )
        combined = ServerDatabase([v for db in partitions for v in db.values])
        single = SelectedSumProtocol(ExecutionContext(rng="w")).run(
            combined, selection
        )
        assert distributed.breakdown.server_compute_s == pytest.approx(
            single.breakdown.server_compute_s
        )
