"""Tests for the combined optimizations — paper §3.4."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datastore.database import ServerDatabase
from repro.datastore.workload import WorkloadGenerator
from repro.exceptions import ParameterError, ProtocolError
from repro.spfe.batching import BatchedSelectedSumProtocol
from repro.spfe.combined import CombinedSelectedSumProtocol
from repro.spfe.context import ExecutionContext
from repro.spfe.preprocessing import PreprocessedSelectedSumProtocol
from repro.spfe.selected_sum import SelectedSumProtocol


class TestCorrectness:
    def test_known_sum(self, ctx):
        db = ServerDatabase([10, 20, 30, 40, 50])
        result = CombinedSelectedSumProtocol(ctx, batch_size=2).run(
            db, [0, 1, 1, 0, 1]
        )
        assert result.value == 100

    def test_rejects_weights(self, ctx):
        db = ServerDatabase([1, 2])
        with pytest.raises(ProtocolError):
            CombinedSelectedSumProtocol(ctx).run(db, [2, 1])

    def test_rejects_bad_batch(self, ctx):
        with pytest.raises(ParameterError):
            CombinedSelectedSumProtocol(ctx, batch_size=0)

    @settings(max_examples=10, deadline=None)
    @given(st.data())
    def test_random_workloads(self, data):
        n = data.draw(st.integers(1, 60))
        batch = data.draw(st.integers(1, 20))
        values = data.draw(st.lists(st.integers(0, 999), min_size=n, max_size=n))
        bits = data.draw(st.lists(st.integers(0, 1), min_size=n, max_size=n))
        db = ServerDatabase(values)
        ctx = ExecutionContext(rng=repr((batch, values)))
        result = CombinedSelectedSumProtocol(ctx, batch_size=batch).run(db, bits)
        assert result.value == db.select_sum(bits)


class TestTiming:
    def _all_variants(self, n=4000, seed="comb"):
        generator = WorkloadGenerator(seed)
        database = generator.database(n)
        selection = generator.random_selection(n, n // 20)

        def run(protocol_cls, **kwargs):
            return protocol_cls(ExecutionContext(rng=seed), **kwargs).run(
                database, selection
            )

        return {
            "plain": run(SelectedSumProtocol),
            "batched": run(BatchedSelectedSumProtocol),
            "preprocessed": run(PreprocessedSelectedSumProtocol),
            "combined": run(CombinedSelectedSumProtocol),
        }

    def test_combined_is_fastest(self):
        results = self._all_variants()
        makespans = {k: v.makespan_s for k, v in results.items()}
        assert makespans["combined"] < makespans["preprocessed"]
        assert makespans["combined"] < makespans["batched"]
        assert makespans["combined"] < makespans["plain"]

    def test_paper_reduction_magnitude(self):
        """The paper reports ~94% online reduction for the combination."""
        results = self._all_variants(n=8000)
        reduction = 1 - results["combined"].makespan_s / results["plain"].makespan_s
        assert 0.90 < reduction < 0.96

    def test_bounded_by_server_total(self):
        """With client work gone and chunks pipelined, the makespan
        approaches the server's total product time."""
        results = self._all_variants()
        combined = results["combined"]
        server_total = combined.breakdown.server_compute_s
        assert combined.makespan_s >= server_total
        assert combined.makespan_s < 1.4 * server_total

    def test_offline_equivalent_to_preprocessed(self):
        results = self._all_variants()
        assert results["combined"].breakdown.offline_precompute_s == pytest.approx(
            results["preprocessed"].breakdown.offline_precompute_s
        )

    def test_all_variants_agree_on_value(self):
        results = self._all_variants()
        values = {r.value for r in results.values()}
        assert len(values) == 1
