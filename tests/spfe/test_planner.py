"""Tests for the analytic protocol planner."""

import pytest

from repro.exceptions import ParameterError
from repro.experiments.environments import long_distance, short_distance
from repro.spfe.planner import ProtocolPlanner


@pytest.fixture()
def planner():
    return ProtocolPlanner(short_distance.context())


class TestRanking:
    def test_combined_wins_when_everything_allowed(self, planner):
        plan = planner.plan(100_000)
        assert plan.best.protocol == "combined"
        # The full ladder, in the paper's order of effectiveness.
        assert plan.ranking() == ["combined", "preprocessed", "batched", "plain"]

    def test_plain_always_admissible(self, planner):
        plan = planner.plan(
            1000, allow_preprocessing=False, allow_batching=False
        )
        assert plan.ranking() == ["plain"]
        assert len(plan.rejected) == 2

    def test_multiclient_when_peers_available(self, planner):
        plan = planner.plan(
            100_000, allow_preprocessing=False, available_clients=3
        )
        assert plan.best.protocol == "multiclient"

    def test_rankings_use_estimates(self, planner):
        plan = planner.plan(50_000)
        makespans = [c.makespan_s for c in plan.candidates]
        assert makespans == sorted(makespans)


class TestConstraints:
    def test_offline_budget(self, planner):
        # Pool fill at n=100k is ~36 minutes on the P-III.
        plan = planner.plan(100_000, max_offline_minutes=10)
        assert "preprocessed" not in plan.ranking()
        assert "combined" not in plan.ranking()
        assert any("offline" in reason for reason in plan.rejected)

    def test_offline_budget_generous(self, planner):
        plan = planner.plan(100_000, max_offline_minutes=120)
        assert plan.best.protocol == "combined"

    def test_storage_budget(self, planner):
        # The pool is 2n ciphertexts of 128 B = 25.6 MB at n=100k.
        plan = planner.plan(100_000, max_client_storage_mb=10)
        assert "preprocessed" not in plan.ranking()
        assert any("pool" in reason for reason in plan.rejected)

    def test_storage_budget_scales_with_keys(self):
        # Bigger keys -> bigger pool -> the same budget excludes sooner.
        small_keys = ProtocolPlanner(short_distance.context(key_bits=256))
        large_keys = ProtocolPlanner(short_distance.context(key_bits=2048))
        budget = 15.0
        assert "preprocessed" in small_keys.plan(
            100_000, max_client_storage_mb=budget
        ).ranking()
        assert "preprocessed" not in large_keys.plan(
            100_000, max_client_storage_mb=budget
        ).ranking()

    def test_validation(self, planner):
        with pytest.raises(ParameterError):
            planner.plan(0)
        with pytest.raises(ParameterError):
            planner.plan(10, available_clients=0)

    def test_no_candidates_raises_on_best(self):
        from repro.spfe.planner import QueryPlan

        with pytest.raises(ParameterError):
            QueryPlan(n=1).best


class TestEnvironmentSensitivity:
    def test_modem_changes_the_calculus(self):
        """Over the modem, preprocessing saves less (communication
        dominates the online path), but combined still wins."""
        cluster_plan = ProtocolPlanner(short_distance.context()).plan(100_000)
        modem_plan = ProtocolPlanner(long_distance.context()).plan(100_000)
        assert cluster_plan.best.protocol == "combined"
        assert modem_plan.best.protocol == "combined"
        cluster_gain = (
            cluster_plan.candidates[-1].makespan_s / cluster_plan.best.makespan_s
        )
        modem_gain = (
            modem_plan.candidates[-1].makespan_s / modem_plan.best.makespan_s
        )
        assert cluster_gain > modem_gain  # the modem caps the win

    def test_explain_output(self, planner):
        text = planner.plan(100_000, max_offline_minutes=1).explain()
        assert "query plan for n = 100000" in text
        assert "excluded" in text
        assert "1. " in text
