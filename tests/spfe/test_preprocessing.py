"""Tests for the preprocessing optimization — paper §3.3."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.paillier import PaillierScheme, generate_keypair
from repro.crypto.simulated import SimulatedPaillier
from repro.datastore.database import ServerDatabase
from repro.datastore.workload import WorkloadGenerator
from repro.exceptions import ParameterError, ProtocolError
from repro.spfe.context import ExecutionContext
from repro.spfe.preprocessing import (
    EncryptionPool,
    PreprocessedSelectedSumProtocol,
)
from repro.spfe.selected_sum import SelectedSumProtocol


class TestEncryptionPool:
    def test_fill_and_take(self):
        scheme = SimulatedPaillier("pool")
        keypair = scheme.generate(128)
        pool = EncryptionPool(scheme, keypair.public)
        pool.fill(zeros=3, ones=2)
        assert pool.available(0) == 3
        assert pool.available(1) == 2
        ct = pool.take(1)
        assert scheme.decrypt(keypair.private, ct) == 1
        assert pool.available(1) == 1
        assert pool.misses == 0

    def test_takes_are_single_use(self):
        scheme = SimulatedPaillier("single")
        keypair = scheme.generate(128)
        pool = EncryptionPool(scheme, keypair.public)
        pool.fill(zeros=0, ones=2)
        a = pool.take(1)
        b = pool.take(1)
        assert a != b  # distinct stored ciphertexts, never the same one

    def test_dry_pool_misses(self):
        scheme = SimulatedPaillier("dry")
        keypair = scheme.generate(128)
        pool = EncryptionPool(scheme, keypair.public)
        ct = pool.take(0)
        assert scheme.decrypt(keypair.private, ct) == 0
        assert pool.misses == 1

    def test_validates(self):
        scheme = SimulatedPaillier("val")
        keypair = scheme.generate(128)
        pool = EncryptionPool(scheme, keypair.public)
        with pytest.raises(ParameterError):
            pool.fill(-1, 0)
        with pytest.raises(ParameterError):
            pool.take(2)

    def test_with_real_paillier(self):
        scheme = PaillierScheme()
        keypair = generate_keypair(128, "pool-real")
        pool = EncryptionPool(scheme, keypair.public, "pool-rng")
        pool.fill(zeros=2, ones=2)
        assert scheme.decrypt(keypair.private, pool.take(1)) == 1
        assert scheme.decrypt(keypair.private, pool.take(0)) == 0


class TestProtocol:
    def test_correctness(self, ctx, workload):
        database, selection = workload
        result = PreprocessedSelectedSumProtocol(ctx).run(database, selection)
        assert result.value == database.select_sum(selection)

    def test_rejects_weighted_selection(self, ctx):
        db = ServerDatabase([1, 2, 3])
        with pytest.raises(ProtocolError):
            PreprocessedSelectedSumProtocol(ctx).run(db, [2, 0, 1])

    @settings(max_examples=10, deadline=None)
    @given(st.data())
    def test_random_workloads(self, data):
        n = data.draw(st.integers(1, 50))
        values = data.draw(st.lists(st.integers(0, 999), min_size=n, max_size=n))
        bits = data.draw(st.lists(st.integers(0, 1), min_size=n, max_size=n))
        db = ServerDatabase(values)
        ctx = ExecutionContext(rng=repr(values))
        result = PreprocessedSelectedSumProtocol(ctx).run(db, bits)
        assert result.value == db.select_sum(bits)


class TestTiming:
    def _pair(self, n=2000, seed="pre"):
        generator = WorkloadGenerator(seed)
        database = generator.database(n)
        selection = generator.random_selection(n, n // 20)
        plain = SelectedSumProtocol(ExecutionContext(rng=seed)).run(
            database, selection
        )
        pre = PreprocessedSelectedSumProtocol(ExecutionContext(rng=seed)).run(
            database, selection
        )
        return plain, pre

    def test_online_runtime_reduced(self):
        plain, pre = self._pair()
        assert pre.makespan_s < plain.makespan_s

    def test_paper_reduction_magnitude(self):
        """The paper reports ~82% online reduction on the cluster."""
        plain, pre = self._pair(n=5000)
        reduction = 1 - pre.makespan_s / plain.makespan_s
        assert 0.75 < reduction < 0.92

    def test_server_becomes_dominant_online(self):
        """Figure 5: after preprocessing the server computation is the
        dominant online component."""
        _, pre = self._pair()
        b = pre.breakdown
        assert b.server_compute_s > b.client_encrypt_s
        assert b.server_compute_s > b.communication_s

    def test_offline_work_accounted(self):
        plain, pre = self._pair()
        # Offline pool fill is 2n encryptions: about twice the plain
        # protocol's online encryption time.
        assert pre.breakdown.offline_precompute_s == pytest.approx(
            2 * plain.breakdown.client_encrypt_s
        )

    def test_server_and_comm_unchanged(self):
        plain, pre = self._pair()
        assert pre.breakdown.server_compute_s == pytest.approx(
            plain.breakdown.server_compute_s
        )
        assert pre.breakdown.communication_s == pytest.approx(
            plain.breakdown.communication_s, rel=0.01
        )

    def test_pool_metadata(self, ctx, workload):
        database, selection = workload
        result = PreprocessedSelectedSumProtocol(ctx).run(database, selection)
        assert result.metadata["pool_zeros"] == len(database)
        assert result.metadata["pool_ones"] == len(database)
        assert result.metadata["pool_misses"] == 0


class TestUndersizedPool:
    def test_misses_charged_online(self, workload):
        database, selection = workload
        m = sum(selection)
        ctx = ExecutionContext(rng="undersized")
        # Pool with too few ones: the shortfall is encrypted online.
        result = PreprocessedSelectedSumProtocol(
            ctx, pool_zeros=len(database), pool_ones=max(0, m - 5)
        ).run(database, selection)
        assert result.value == database.select_sum(selection)
        assert result.metadata["pool_misses"] == 5

        full = PreprocessedSelectedSumProtocol(
            ExecutionContext(rng="full")
        ).run(database, selection)
        assert (
            result.breakdown.client_encrypt_s
            > full.breakdown.client_encrypt_s
        )
