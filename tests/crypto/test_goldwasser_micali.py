"""Tests for :mod:`repro.crypto.goldwasser_micali`."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.goldwasser_micali import (
    GMPublicKey,
    decrypt_bits,
    encrypt_bits,
    generate_gm_keypair,
)
from repro.crypto.ntheory import jacobi
from repro.crypto.rng import DeterministicRandom
from repro.exceptions import EncryptionError, KeyGenerationError


@pytest.fixture(scope="module")
def keypair():
    return generate_gm_keypair(128, "gm-test")


class TestKeyGeneration:
    def test_blum_modulus(self, keypair):
        assert keypair.private.p % 4 == 3
        assert keypair.private.q % 4 == 3

    def test_z_is_pseudo_residue(self, keypair):
        pk, sk = keypair
        assert jacobi(pk.z, pk.n) == 1
        # ... but a non-residue mod p (that's what makes it encrypt 1).
        assert pow(pk.z, (sk.p - 1) // 2, sk.p) == sk.p - 1

    def test_rejects_bad_z(self, keypair):
        # An element with Jacobi symbol -1 cannot be the public z.
        n = keypair.public.n
        bad = next(z for z in range(2, 100) if jacobi(z, n) == -1)
        with pytest.raises(KeyGenerationError):
            GMPublicKey(n, bad)


class TestRoundtrip:
    def test_both_bits(self, keypair):
        for bit in (0, 1):
            c = keypair.public.encrypt_bit(bit, DeterministicRandom(bit))
            assert keypair.private.decrypt_bit(c) == bit

    def test_rejects_non_bits(self, keypair):
        with pytest.raises(EncryptionError):
            keypair.public.encrypt_bit(2)

    def test_vector_helpers(self, keypair):
        bits = [1, 0, 1, 1, 0, 0, 1, 0]
        cts = encrypt_bits(keypair.public, bits, DeterministicRandom("v"))
        assert decrypt_bits(keypair.private, cts) == bits

    def test_encryptions_randomized(self, keypair):
        rng = DeterministicRandom("gm-rand")
        cs = {keypair.public.encrypt_bit(1, rng) for _ in range(10)}
        assert len(cs) == 10


class TestXorHomomorphism:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 1), st.integers(0, 1))
    def test_xor(self, keypair, a, b):
        pk, sk = keypair
        ca = pk.encrypt_bit(a, DeterministicRandom(a))
        cb = pk.encrypt_bit(b, DeterministicRandom(b + 2))
        assert sk.decrypt_bit(pk.xor(ca, cb)) == a ^ b

    def test_xor_chain(self, keypair):
        pk, sk = keypair
        bits = [1, 1, 0, 1, 0, 1, 1]
        rng = DeterministicRandom("chain")
        acc = pk.encrypt_bit(0, rng)
        for b in bits:
            acc = pk.xor(acc, pk.encrypt_bit(b, rng))
        expected = 0
        for b in bits:
            expected ^= b
        assert sk.decrypt_bit(acc) == expected
