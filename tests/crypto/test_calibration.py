"""Tests for :mod:`repro.crypto.calibration` — measured mode routing."""

import json

import pytest

from repro.crypto.calibration import (
    PROFILE_KIND,
    CalibrationProfile,
    load_profile,
    render_mode_table,
    run_calibration,
    save_profile,
)
from repro.crypto.engine import CryptoEngine
from repro.crypto.paillier import generate_keypair
from repro.exceptions import ParameterError
from repro.store.state import StateStore


def make_profile():
    profile = CalibrationProfile(meta={"workers": 2})
    profile.record(
        "weighted", 256, 200, {"serial": 0.05, "multiexp": 0.01, "parallel": 0.2}
    )
    profile.record(
        "weighted", 512, 1000, {"serial": 1.0, "multiexp": 0.3, "parallel": 0.1}
    )
    profile.record("encrypt", 256, 200, {"serial": 0.2, "parallel": 0.4})
    return profile


class TestProfile:
    def test_best_mode_at_measured_point(self):
        profile = make_profile()
        assert profile.best_mode("weighted", 256, 200) == "multiexp"
        assert profile.best_mode("weighted", 512, 1000) == "parallel"
        assert profile.best_mode("encrypt", 256, 200) == "serial"

    def test_lookup_snaps_to_nearest_point_in_log_space(self):
        profile = make_profile()
        # 512/800 is much closer to (512, 1000) than to (256, 200)
        assert profile.best_mode("weighted", 512, 800) == "parallel"
        assert profile.best_mode("weighted", 300, 150) == "multiexp"

    def test_unknown_kind_is_none(self):
        assert make_profile().best_mode("nonsense", 256, 200) is None
        assert CalibrationProfile().best_mode("weighted", 256, 200) is None

    def test_record_replaces(self):
        profile = make_profile()
        profile.record("weighted", 256, 200, {"serial": 0.001})
        assert profile.best_mode("weighted", 256, 200) == "serial"
        assert len(profile) == 3

    def test_record_validates(self):
        profile = CalibrationProfile()
        with pytest.raises(ParameterError):
            profile.record("weighted", 0, 10, {"serial": 1.0})
        with pytest.raises(ParameterError):
            profile.record("weighted", 256, 10, {})

    def test_points_filter(self):
        profile = make_profile()
        assert len(profile.points()) == 3
        assert [p[0] for p in profile.points("encrypt")] == ["encrypt"]


class TestSerialization:
    def test_json_roundtrip(self):
        profile = make_profile()
        restored = CalibrationProfile.from_json(profile.to_json())
        assert restored.points() == profile.points()
        assert restored.meta == profile.meta

    def test_rejects_garbage(self):
        with pytest.raises(ParameterError):
            CalibrationProfile.from_json("not json")
        with pytest.raises(ParameterError):
            CalibrationProfile.from_json("[1, 2]")

    def test_rejects_unknown_version(self):
        document = json.loads(make_profile().to_json())
        document["version"] = 99
        with pytest.raises(ParameterError):
            CalibrationProfile.from_json(json.dumps(document))

    def test_render_mode_table_lists_every_point(self):
        table = render_mode_table(make_profile())
        assert "multiexp" in table and "parallel" in table
        # header + one row per point
        assert len(table.splitlines()) == 1 + 3


class TestEngineRouting:
    """The profile steers a real engine without perturbing results."""

    @pytest.fixture(scope="class")
    def keypair(self):
        return generate_keypair(128, "calibration-routing")

    def test_routes_weighted_to_recorded_winner(self, keypair):
        public = keypair.public
        cts = [public.encrypt_raw(i, "calib-cts-%d" % i) for i in range(8)]
        weights = list(range(1, 9))
        with CryptoEngine(workers=1) as baseline:
            expected = baseline.weighted_product(
                public.nsquare, public.n, cts, weights
            )
        for winner in ("serial", "multiexp", "multiexp_mont"):
            profile = CalibrationProfile()
            profile.record("weighted", public.bits, len(cts), {winner: 0.001})
            with CryptoEngine(workers=1, calibration=profile) as engine:
                assert (
                    engine.weighted_product(public.nsquare, public.n, cts, weights)
                    == expected
                )

    def test_parallel_choice_clamped_without_pool(self, keypair):
        public = keypair.public
        profile = CalibrationProfile()
        profile.record("weighted", public.bits, 4, {"parallel": 0.001})
        cts = [public.encrypt_raw(i, "clamp-%d" % i) for i in range(4)]
        with CryptoEngine(workers=1, calibration=profile) as engine:
            engine.weighted_product(public.nsquare, public.n, cts, [1, 2, 3, 4])
            # a 1-worker engine cannot fan out: the batch ran in-process
            assert engine.parallel_batches == 0
            assert engine.serial_batches == 1

    def test_encrypt_routing_preserves_determinism(self, keypair):
        public = keypair.public
        serial = CalibrationProfile()
        serial.record("encrypt", public.bits, 6, {"serial": 0.001})
        parallel = CalibrationProfile()
        parallel.record("encrypt", public.bits, 6, {"parallel": 0.001})
        plaintexts = [1, 2, 3, 4, 5, 6]
        with CryptoEngine(workers=1, chunk_size=2, calibration=serial) as engine:
            a = engine.encrypt_vector(public, plaintexts, "route-seed")
        with CryptoEngine(workers=2, chunk_size=2, calibration=parallel) as engine:
            b = engine.encrypt_vector(public, plaintexts, "route-seed")
        assert a == b  # byte-for-byte, whatever the router picked


class TestRunCalibration:
    def test_tiny_run_measures_every_point(self):
        notes = []
        profile = run_calibration(
            key_bits_list=[64],
            sizes=[8],
            workers=1,
            rounds=1,
            seed_label="test-calib",
            progress=notes.append,
        )
        assert len(profile) == 2  # weighted + encrypt at one grid point
        weighted = profile.timings("weighted", 64, 8)
        assert {"serial", "multiexp", "multiexp_mont"} <= set(weighted)
        assert "parallel" not in weighted  # workers=1: no pool measured
        assert profile.timings("encrypt", 64, 8)
        assert len(notes) == 2

    def test_rejects_nonpositive_rounds(self):
        with pytest.raises(ParameterError):
            run_calibration(key_bits_list=[64], sizes=[8], rounds=0)


class TestStorePersistence:
    def test_save_and_load_roundtrip(self):
        with StateStore(":memory:") as store:
            assert load_profile(store) is None
            profile = make_profile()
            save_profile(store, profile)
            restored = load_profile(store)
            assert restored.points() == profile.points()
            # overwrite replaces, not appends
            profile.record("weighted", 128, 50, {"serial": 0.01})
            save_profile(store, profile)
            assert len(load_profile(store)) == 4

    def test_persisted_kind_is_stable(self):
        with StateStore(":memory:") as store:
            save_profile(store, make_profile())
            assert store.load_calibration(PROFILE_KIND) is not None
