"""Property tests for :mod:`repro.crypto.montgomery`.

The whole contract of the Montgomery context is bit-for-bit agreement
with the ``pow``/``%`` operators it replaces: the calibrated engine
switches a fold into the Montgomery domain purely on measured speed, so
any numeric divergence would silently break the serial==parallel
determinism guarantee.  These suites drive REDC, domain round-trips,
multiplication, and windowed exponentiation against the builtins across
random odd moduli.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.montgomery import MontgomeryContext
from repro.crypto.multiexp import multi_exponent
from repro.exceptions import ParameterError

# Odd moduli spanning sub-byte to multi-limb sizes; bit-for-bit equality
# at these sizes implies it at 1024 bits (same code path, longer ints).
odd_moduli = st.integers(3, 1 << 96).map(lambda v: v | 1)


class TestContextInvariants:
    @given(odd_moduli)
    @settings(max_examples=100, deadline=None)
    def test_constants(self, modulus):
        ctx = MontgomeryContext(modulus)
        r_full = 1 << ctx.shift
        assert r_full > modulus
        assert ctx.shift % 8 == 0  # byte-aligned R
        assert ctx.r == r_full % modulus
        assert ctx.r2 == r_full * r_full % modulus
        # n * n' == -1 mod R is the REDC correctness condition
        assert (modulus * ctx.n_prime) & ctx.mask == ctx.mask

    def test_rejects_even_modulus(self):
        with pytest.raises(ParameterError):
            MontgomeryContext(10)

    def test_rejects_tiny_modulus(self):
        with pytest.raises(ParameterError):
            MontgomeryContext(1)


class TestDomainConversion:
    @given(st.data())
    @settings(max_examples=150, deadline=None)
    def test_roundtrip_is_identity(self, data):
        modulus = data.draw(odd_moduli)
        ctx = MontgomeryContext(modulus)
        value = data.draw(st.integers(0, modulus - 1))
        assert ctx.from_mont(ctx.to_mont(value)) == value

    @given(st.data())
    @settings(max_examples=100, deadline=None)
    def test_redc_is_division_by_r(self, data):
        modulus = data.draw(odd_moduli)
        ctx = MontgomeryContext(modulus)
        # REDC(t) == t * R^-1 mod n for any t < n * R
        t = data.draw(st.integers(0, modulus * (1 << ctx.shift) - 1))
        r_inv = pow(1 << ctx.shift, -1, modulus)
        assert ctx.redc(t) == t * r_inv % modulus

    @given(odd_moduli)
    @settings(max_examples=50, deadline=None)
    def test_one_is_r(self, modulus):
        ctx = MontgomeryContext(modulus)
        assert ctx.one() == ctx.to_mont(1)
        assert ctx.from_mont(ctx.one()) == 1 % modulus


class TestMul:
    @given(st.data())
    @settings(max_examples=150, deadline=None)
    def test_matches_modmul(self, data):
        modulus = data.draw(odd_moduli)
        ctx = MontgomeryContext(modulus)
        a = data.draw(st.integers(0, modulus - 1))
        b = data.draw(st.integers(0, modulus - 1))
        product = ctx.mul(ctx.to_mont(a), ctx.to_mont(b))
        assert ctx.from_mont(product) == a * b % modulus


class TestPow:
    @given(st.data())
    @settings(max_examples=150, deadline=None)
    def test_matches_builtin_pow(self, data):
        modulus = data.draw(odd_moduli)
        ctx = MontgomeryContext(modulus)
        base = data.draw(st.integers(0, modulus - 1))
        # cover zero, sub-window, and multi-window exponents
        exponent = data.draw(st.integers(0, 1 << 80))
        assert ctx.pow(base, exponent) == pow(base, exponent, modulus)

    @given(odd_moduli)
    @settings(max_examples=50, deadline=None)
    def test_edge_exponents(self, modulus):
        ctx = MontgomeryContext(modulus)
        assert ctx.pow(2, 0) == 1 % modulus
        assert ctx.pow(2, 1) == 2 % modulus
        assert ctx.pow(0, 5) == 0

    def test_rejects_negative_exponent(self):
        with pytest.raises(ParameterError):
            MontgomeryContext(17).pow(2, -1)


class TestMultiexpIntegration:
    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_montgomery_fold_matches_plain(self, data):
        modulus = data.draw(odd_moduli.filter(lambda m: m >= 5))
        count = data.draw(st.integers(0, 16))
        bases = data.draw(
            st.lists(st.integers(0, modulus - 1), min_size=count, max_size=count)
        )
        exponents = data.draw(
            st.lists(st.integers(0, 1 << 40), min_size=count, max_size=count)
        )
        plain = multi_exponent(bases, exponents, modulus)
        assert multi_exponent(bases, exponents, modulus, montgomery=True) == plain
        ctx = MontgomeryContext(modulus)
        assert multi_exponent(bases, exponents, modulus, montgomery=ctx) == plain

    def test_context_modulus_mismatch_rejected(self):
        ctx = MontgomeryContext(17)
        with pytest.raises(ParameterError):
            multi_exponent([2], [3], 19, montgomery=ctx)
