"""Unit and property tests for :mod:`repro.crypto.ntheory`."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.crypto import ntheory


class TestEgcd:
    def test_known_value(self):
        assert ntheory.egcd(240, 46) == (2, -9, 47)

    def test_coprime(self):
        g, x, y = ntheory.egcd(17, 31)
        assert g == 1
        assert 17 * x + 31 * y == 1

    def test_zero_arguments(self):
        assert ntheory.egcd(0, 0)[0] == 0
        assert ntheory.egcd(0, 7)[0] == 7
        assert ntheory.egcd(7, 0)[0] == 7

    @given(st.integers(-10**12, 10**12), st.integers(-10**12, 10**12))
    def test_bezout_identity(self, a, b):
        g, x, y = ntheory.egcd(a, b)
        assert g == math.gcd(a, b)
        assert a * x + b * y == g


class TestModinv:
    def test_known_value(self):
        assert ntheory.modinv(3, 11) == 4

    def test_not_invertible(self):
        with pytest.raises(ValueError):
            ntheory.modinv(6, 9)

    def test_bad_modulus(self):
        with pytest.raises(ValueError):
            ntheory.modinv(3, 0)

    @given(st.integers(1, 10**9), st.integers(2, 10**9))
    def test_inverse_property(self, a, m):
        if math.gcd(a, m) != 1:
            with pytest.raises(ValueError):
                ntheory.modinv(a, m)
        else:
            inv = ntheory.modinv(a, m)
            assert 0 <= inv < m
            assert a * inv % m == 1 % m


class TestCrt:
    def test_pair_known(self):
        assert ntheory.crt_pair(2, 3, 3, 5) == 8

    def test_pair_rejects_non_coprime(self):
        with pytest.raises(ValueError):
            ntheory.crt_pair(1, 6, 2, 9)

    def test_multi_known(self):
        assert ntheory.crt([2, 3, 2], [3, 5, 7]) == 23

    def test_multi_validates_lengths(self):
        with pytest.raises(ValueError):
            ntheory.crt([1, 2], [3])

    def test_multi_requires_input(self):
        with pytest.raises(ValueError):
            ntheory.crt([], [])

    @given(st.integers(0, 10**15))
    def test_roundtrip_two_primes(self, x):
        p, q = 1_000_003, 1_000_033
        x %= p * q
        assert ntheory.crt_pair(x % p, p, x % q, q) == x


class TestJacobi:
    def test_requires_odd_positive(self):
        with pytest.raises(ValueError):
            ntheory.jacobi(3, 4)
        with pytest.raises(ValueError):
            ntheory.jacobi(3, -5)

    def test_zero_when_sharing_factor(self):
        assert ntheory.jacobi(6, 9) == 0

    def test_euler_criterion_agreement(self):
        # For odd prime p, Jacobi == Legendre == a^((p-1)/2) mod p.
        p = 10007
        for a in range(1, 60):
            euler = pow(a, (p - 1) // 2, p)
            expected = 1 if euler == 1 else (-1 if euler == p - 1 else 0)
            assert ntheory.jacobi(a, p) == expected

    @given(st.integers(1, 10**9), st.integers(1, 10**4))
    def test_multiplicative_in_numerator(self, a, k):
        n = 2 * k + 1  # odd
        lhs = ntheory.jacobi(a, n) * ntheory.jacobi(a + 1, n)
        rhs = ntheory.jacobi(a * (a + 1), n)
        assert lhs == rhs


class TestMisc:
    def test_lcm(self):
        assert ntheory.lcm(4, 6) == 12
        assert ntheory.lcm(0, 5) == 0

    def test_isqrt_and_square_detection(self):
        assert ntheory.isqrt(24) == 4
        assert ntheory.is_perfect_square(49)
        assert not ntheory.is_perfect_square(48)
        assert not ntheory.is_perfect_square(-4)
        with pytest.raises(ValueError):
            ntheory.isqrt(-1)

    def test_bytes_for_bits(self):
        assert ntheory.bytes_for_bits(0) == 1
        assert ntheory.bytes_for_bits(8) == 1
        assert ntheory.bytes_for_bits(9) == 2
        assert ntheory.bytes_for_bits(1024) == 128
        with pytest.raises(ValueError):
            ntheory.bytes_for_bits(-1)

    def test_product_mod(self):
        assert ntheory.product_mod([3, 4, 5], 7) == 60 % 7
        assert ntheory.product_mod([], 7) == 1
        with pytest.raises(ValueError):
            ntheory.product_mod([1], 0)

    @given(st.lists(st.integers(0, 2**64), max_size=20), st.integers(2, 2**32))
    def test_product_mod_matches_bigint(self, values, m):
        expected = 1
        for v in values:
            expected *= v
        assert ntheory.product_mod(values, m) == expected % m
