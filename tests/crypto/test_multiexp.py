"""Property tests for the batch exponentiation kernels.

The kernels' whole contract is bit-for-bit agreement with the naive
loops they replace: ``multi_exponent`` against per-element ``pow()``
accumulation (reducing signed scalars exactly as ``ciphertext_scale``
does), ``FixedBaseTable.pow`` against ``pow(base, x, modulus)``.  The
hypothesis suites here drive both across random batches — including the
zero/one-weight fast paths, negative encoded scalars, and the
``initial`` accumulator argument — at tiny moduli where thousands of
examples are cheap.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.multiexp import FixedBaseTable, multi_exponent, select_window
from repro.crypto.paillier import generate_keypair
from repro.crypto.rng import DeterministicRandom
from repro.exceptions import ParameterError


def naive_product(bases, exponents, modulus, initial=None):
    """The reference loop the kernel must match bit for bit."""
    acc = 1 if initial is None else initial % modulus
    for base, exponent in zip(bases, exponents):
        acc = acc * pow(base, exponent, modulus) % modulus
    return acc


# A tiny odd modulus keeps examples fast; the kernel never inspects the
# modulus structure, so agreement at small sizes implies it at 512 bits
# (the benchmark suite re-checks agreement there anyway).
moduli = st.integers(3, 1 << 64).map(lambda v: v | 1)


class TestMultiExponent:
    @settings(max_examples=150, deadline=None)
    @given(st.data())
    def test_agrees_with_naive_loop(self, data):
        modulus = data.draw(moduli)
        count = data.draw(st.integers(0, 24))
        bases = data.draw(
            st.lists(st.integers(0, modulus - 1), min_size=count, max_size=count)
        )
        exponents = data.draw(
            st.lists(st.integers(0, 1 << 40), min_size=count, max_size=count)
        )
        assert multi_exponent(bases, exponents, modulus) == naive_product(
            bases, exponents, modulus
        )

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_initial_accumulator_folds_once(self, data):
        # A regression guard for the subtle bug class: folding `initial`
        # into the bucket accumulator before the squaring chain would
        # square it along with the partial products.
        modulus = data.draw(moduli)
        initial = data.draw(st.integers(0, modulus - 1))
        bases = data.draw(st.lists(st.integers(0, modulus - 1), max_size=12))
        exponents = data.draw(
            st.lists(
                st.integers(0, 1 << 33),
                min_size=len(bases),
                max_size=len(bases),
            )
        )
        assert multi_exponent(
            bases, exponents, modulus, initial=initial
        ) == naive_product(bases, exponents, modulus, initial=initial)

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_zero_and_one_weights_match_fast_paths(self, data):
        modulus = data.draw(moduli)
        bases = data.draw(
            st.lists(st.integers(0, modulus - 1), min_size=1, max_size=16)
        )
        # Force the trivial-exponent paths to dominate the batch.
        exponents = data.draw(
            st.lists(
                st.sampled_from([0, 0, 0, 1, 1, 2, 7]),
                min_size=len(bases),
                max_size=len(bases),
            )
        )
        assert multi_exponent(bases, exponents, modulus) == naive_product(
            bases, exponents, modulus
        )

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 10), st.data())
    def test_window_override_is_result_invariant(self, window, data):
        modulus = data.draw(moduli)
        bases = data.draw(st.lists(st.integers(0, modulus - 1), max_size=10))
        exponents = data.draw(
            st.lists(
                st.integers(0, 1 << 24),
                min_size=len(bases),
                max_size=len(bases),
            )
        )
        assert multi_exponent(
            bases, exponents, modulus, window=window
        ) == naive_product(bases, exponents, modulus)

    def test_negative_encoded_scalars_reduce_like_ciphertext_scale(self):
        # Signed weights enter the kernel after `% n` reduction — exactly
        # what the naive ciphertext_scale loop does.  The decrypted result
        # must match the signed arithmetic.
        keypair = generate_keypair(128, "multiexp-signed")
        public, private = keypair.public, keypair.private
        rng = DeterministicRandom("multiexp-signed-ct")
        values = [5, 9, 2]
        weights = [-3, 4, -1]
        cts = [public.encrypt_raw(public.encode_signed(v), rng) for v in values]
        aggregate = multi_exponent(
            cts, [w % public.n for w in weights], public.nsquare
        )
        expected = sum(v * w for v, w in zip(values, weights))
        assert public.decode_signed(private.raw_decrypt(aggregate)) == expected

    def test_rejects_negative_exponent(self):
        with pytest.raises(ParameterError):
            multi_exponent([2], [-1], 101)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ParameterError):
            multi_exponent([2, 3], [1], 101)

    def test_rejects_degenerate_modulus(self):
        with pytest.raises(ParameterError):
            multi_exponent([2], [1], 1)

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ParameterError):
            multi_exponent([2, 3], [5, 6], 101, window=0)

    def test_empty_batch_returns_initial(self):
        assert multi_exponent([], [], 101) == 1
        assert multi_exponent([], [], 101, initial=42) == 42


class TestSelectWindow:
    def test_grows_with_batch_size(self):
        small = select_window(4, 32)
        large = select_window(100_000, 32)
        assert 1 <= small <= large <= 16

    def test_degenerate_inputs(self):
        assert select_window(0, 32) == 1
        assert select_window(10, 0) == 1


class TestFixedBaseTable:
    @settings(max_examples=80, deadline=None)
    @given(st.data())
    def test_agrees_with_pow(self, data):
        modulus = data.draw(moduli)
        base = data.draw(st.integers(0, modulus - 1))
        bits = data.draw(st.integers(1, 48))
        window = data.draw(st.one_of(st.none(), st.integers(1, 8)))
        table = FixedBaseTable(base, modulus, bits, window)
        exponent = data.draw(st.integers(0, table.capacity - 1))
        assert table.pow(exponent) == pow(base, exponent, modulus)

    def test_boundary_exponents(self):
        table = FixedBaseTable(7, 1009, 16)
        assert table.pow(0) == 1
        top = table.capacity - 1
        assert table.pow(top) == pow(7, top, 1009)

    def test_rejects_out_of_range_exponents(self):
        table = FixedBaseTable(7, 1009, 8)
        with pytest.raises(ParameterError):
            table.pow(-1)
        with pytest.raises(ParameterError):
            table.pow(table.capacity)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ParameterError):
            FixedBaseTable(7, 1, 8)
        with pytest.raises(ParameterError):
            FixedBaseTable(7, 1009, 0)
        with pytest.raises(ParameterError):
            FixedBaseTable(7, 1009, 8, window=0)
        with pytest.raises(ParameterError):
            FixedBaseTable(7, 1009, 8, window=17)

    def test_matches_paillier_obfuscator_identity(self):
        # The fixed-base trick: (h^x mod n)^n == (h^n mod n^2)^x mod n^2,
        # so table powers of g = h^n are exact Paillier obfuscators.
        keypair = generate_keypair(96, "fixed-base-identity")
        public = keypair.public
        h = 12345 % public.n
        table = FixedBaseTable(
            pow(h, public.n, public.nsquare), public.nsquare, public.bits
        )
        for x in (1, 2, 77, (1 << public.bits) - 1):
            r = pow(h, x, public.n)
            assert table.pow(x) == pow(r, public.n, public.nsquare)

    def test_repr_and_entries(self):
        table = FixedBaseTable(7, 1009, 12, window=4)
        assert table.entries == 3 * 15
        assert "window=4" in repr(table)
