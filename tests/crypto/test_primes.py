"""Tests for :mod:`repro.crypto.primes`."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import primes
from repro.crypto.ntheory import jacobi
from repro.crypto.rng import DeterministicRandom
from repro.exceptions import KeyGenerationError


class TestSieve:
    def test_empty_below_two(self):
        assert primes.sieve_upto(0) == []
        assert primes.sieve_upto(2) == []

    def test_first_primes(self):
        assert primes.sieve_upto(30) == [2, 3, 5, 7, 11, 13, 17, 19, 23, 29]

    def test_small_primes_table(self):
        assert primes.SMALL_PRIMES[0] == 2
        assert primes.SMALL_PRIMES[-1] < 10_000
        assert len(primes.SMALL_PRIMES) == 1229  # pi(10000)


class TestIsProbablePrime:
    def test_small_values(self):
        known = set(primes.sieve_upto(2000))
        for n in range(-5, 2000):
            assert primes.is_probable_prime(n) == (n in known)

    def test_carmichael_numbers_rejected(self):
        for carmichael in (561, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 62745):
            assert not primes.is_probable_prime(carmichael)

    def test_large_known_prime(self):
        # 2^127 - 1 is a Mersenne prime.
        assert primes.is_probable_prime(2**127 - 1)

    def test_large_known_composite(self):
        # 2^128 + 1 = 59649589127497217 * 5704689200685129054721
        assert not primes.is_probable_prime(2**128 + 1)

    def test_product_of_large_primes_rejected(self):
        p = primes.random_prime(96, DeterministicRandom("p"))
        q = primes.random_prime(96, DeterministicRandom("q"))
        assert not primes.is_probable_prime(p * q)

    @given(st.integers(3, 10**6))
    def test_agrees_with_solovay_strassen(self, n):
        if n % 2 == 0:
            n += 1
        # Solovay-Strassen with fixed bases as an independent oracle.
        def solovay(n):
            for a in (2, 3, 5, 7, 11, 13, 17):
                if a % n == 0:
                    continue
                j = jacobi(a, n) % n
                if j == 0 or pow(a, (n - 1) // 2, n) != j:
                    return False
            return True

        # Solovay-Strassen with few fixed bases can have false positives,
        # but never false negatives; a definite composite answer must agree.
        if not solovay(n):
            assert not primes.is_probable_prime(n)


class TestGeneration:
    def test_next_prime(self):
        assert primes.next_prime(1) == 2
        assert primes.next_prime(2) == 3
        assert primes.next_prime(14) == 17
        assert primes.next_prime(7919) == 7927

    def test_random_prime_has_exact_bits(self):
        for bits in (17, 32, 64, 128):
            p = primes.random_prime(bits, DeterministicRandom(bits))
            assert p.bit_length() == bits
            assert primes.is_probable_prime(p)

    def test_random_prime_rejects_tiny(self):
        with pytest.raises(KeyGenerationError):
            primes.random_prime(1)

    def test_random_prime_deterministic_with_seed(self):
        a = primes.random_prime(64, DeterministicRandom("fixed"))
        b = primes.random_prime(64, DeterministicRandom("fixed"))
        assert a == b

    def test_prime_pair_distinct(self):
        p, q = primes.random_prime_pair(48, DeterministicRandom("pair"))
        assert p != q
        assert p.bit_length() == q.bit_length() == 48

    def test_safe_prime(self):
        p = primes.random_safe_prime(40, DeterministicRandom("safe"))
        assert primes.is_probable_prime(p)
        assert primes.is_probable_prime((p - 1) // 2)
        assert p.bit_length() == 40

    def test_blum_prime(self):
        p = primes.random_blum_prime(48, DeterministicRandom("blum"))
        assert primes.is_probable_prime(p)
        assert p % 4 == 3

    @settings(max_examples=10, deadline=None)
    @given(st.integers(20, 80))
    def test_random_prime_property(self, bits):
        p = primes.random_prime(bits, DeterministicRandom(bits * 7))
        assert p.bit_length() == bits
        assert p % 2 == 1


class TestMillerRabinDirect:
    def test_witness_proves_composite(self):
        # 221 = 13 * 17; 137 is a Miller-Rabin witness for it.
        assert not primes.miller_rabin(221, iter([137]))

    def test_liar_fools_single_round(self):
        # 174 is a strong liar for 221 — a single bad witness passes.
        assert primes.miller_rabin(221, iter([174]))
