"""Tests for :mod:`repro.crypto.serialization`."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto import serialization as ser


class TestIntCodec:
    def test_roundtrip(self):
        assert ser.decode_int(ser.encode_int(12345, 8)) == 12345

    def test_width_respected(self):
        assert len(ser.encode_int(1, 16)) == 16

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ser.encode_int(-1, 4)

    def test_rejects_overflow(self):
        with pytest.raises(OverflowError):
            ser.encode_int(256, 1)

    @given(st.integers(0, 2**256 - 1))
    def test_roundtrip_property(self, v):
        assert ser.decode_int(ser.encode_int(v, 32)) == v


class TestSequenceCodec:
    def test_roundtrip(self):
        values = (1, 2, 3, 2**64)
        data = ser.encode_int_seq(values, 16)
        assert ser.decode_int_seq(data, 16) == values

    def test_empty(self):
        data = ser.encode_int_seq((), 8)
        assert ser.decode_int_seq(data, 8) == ()

    def test_length_validated(self):
        data = ser.encode_int_seq((1, 2), 8)
        with pytest.raises(ValueError):
            ser.decode_int_seq(data + b"x", 8)

    def test_size_formula(self):
        data = ser.encode_int_seq((0,) * 10, 128)
        assert len(data) == 4 + 10 * 128

    @given(st.lists(st.integers(0, 2**63), max_size=50))
    def test_roundtrip_property(self, values):
        data = ser.encode_int_seq(tuple(values), 8)
        assert ser.decode_int_seq(data, 8) == tuple(values)


class TestSizeFormulas:
    def test_paper_key_size(self):
        # 512-bit keys: ciphertexts in Z_{n^2} are 1024 bits = 128 bytes.
        assert ser.ciphertext_bytes(512) == 128
        assert ser.public_key_bytes(512) == 64

    def test_frame_overhead(self):
        assert ser.frame_overhead_bytes() == 8
