"""Tests for :mod:`repro.crypto.serialization`."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto import serialization as ser


class TestIntCodec:
    def test_roundtrip(self):
        assert ser.decode_int(ser.encode_int(12345, 8)) == 12345

    def test_width_respected(self):
        assert len(ser.encode_int(1, 16)) == 16

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ser.encode_int(-1, 4)

    def test_rejects_overflow(self):
        with pytest.raises(OverflowError):
            ser.encode_int(256, 1)

    @given(st.integers(0, 2**256 - 1))
    def test_roundtrip_property(self, v):
        assert ser.decode_int(ser.encode_int(v, 32)) == v


class TestSequenceCodec:
    def test_roundtrip(self):
        values = (1, 2, 3, 2**64)
        data = ser.encode_int_seq(values, 16)
        assert ser.decode_int_seq(data, 16) == values

    def test_empty(self):
        data = ser.encode_int_seq((), 8)
        assert ser.decode_int_seq(data, 8) == ()

    def test_length_validated(self):
        data = ser.encode_int_seq((1, 2), 8)
        with pytest.raises(ValueError):
            ser.decode_int_seq(data + b"x", 8)

    def test_size_formula(self):
        data = ser.encode_int_seq((0,) * 10, 128)
        assert len(data) == 4 + 10 * 128

    @given(st.lists(st.integers(0, 2**63), max_size=50))
    def test_roundtrip_property(self, values):
        data = ser.encode_int_seq(tuple(values), 8)
        assert ser.decode_int_seq(data, 8) == tuple(values)


class TestPackedVector:
    """The warm-worker task codec: self-describing, exactly invertible."""

    def test_roundtrip(self):
        values = [0, 1, 2**64, 5]
        assert ser.unpack_int_vector(ser.pack_int_vector(values)) == tuple(values)

    def test_empty(self):
        assert ser.unpack_int_vector(ser.pack_int_vector([])) == ()

    def test_auto_width_is_tight(self):
        # header (11 bytes) + count * width for the largest element
        blob = ser.pack_int_vector([1, 255])
        assert len(blob) == 11 + 2 * 1
        blob = ser.pack_int_vector([1, 256])
        assert len(blob) == 11 + 2 * 2

    def test_explicit_width_respected(self):
        blob = ser.pack_int_vector([1, 2], width=16)
        assert len(blob) == 11 + 2 * 16
        assert ser.unpack_int_vector(blob) == (1, 2)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ser.pack_int_vector([-1])

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            ser.pack_int_vector([1], width=0)

    def test_rejects_overflowing_explicit_width(self):
        with pytest.raises(OverflowError):
            ser.pack_int_vector([256], width=1)

    def test_rejects_bad_magic(self):
        blob = ser.pack_int_vector([1, 2])
        with pytest.raises(ValueError, match="magic"):
            ser.unpack_int_vector(b"XX" + blob[2:])

    def test_rejects_unknown_version(self):
        blob = ser.pack_int_vector([1, 2])
        with pytest.raises(ValueError, match="version"):
            ser.unpack_int_vector(blob[:2] + b"\xff" + blob[3:])

    def test_rejects_truncation_and_trailing_bytes(self):
        blob = ser.pack_int_vector([1, 2, 3])
        with pytest.raises(ValueError):
            ser.unpack_int_vector(blob[:-1])
        with pytest.raises(ValueError):
            ser.unpack_int_vector(blob + b"\x00")
        with pytest.raises(ValueError):
            ser.unpack_int_vector(blob[:4])  # shorter than the header

    @given(st.lists(st.integers(0, 2**1100), max_size=40))
    def test_roundtrip_property(self, values):
        # 1100-bit elements cover the real payload: 1024-bit ciphertexts
        assert ser.unpack_int_vector(ser.pack_int_vector(values)) == tuple(values)

    @given(st.lists(st.integers(0, 2**63 - 1), max_size=20), st.integers(8, 24))
    def test_roundtrip_property_explicit_width(self, values, width):
        blob = ser.pack_int_vector(values, width=width)
        assert ser.unpack_int_vector(blob) == tuple(values)


class TestSizeFormulas:
    def test_paper_key_size(self):
        # 512-bit keys: ciphertexts in Z_{n^2} are 1024 bits = 128 bytes.
        assert ser.ciphertext_bytes(512) == 128
        assert ser.public_key_bytes(512) == 64

    def test_frame_overhead(self):
        assert ser.frame_overhead_bytes() == 8
