"""Contract tests: every AdditiveHomomorphicScheme obeys the same laws.

The protocols are written against the scheme interface, so each
implementation — real Paillier, Damgård–Jurik at several s, exponential
ElGamal, and the simulated stand-in — must satisfy identical algebraic
contracts.  One parametrized suite enforces that; adding a scheme means
adding one fixture entry.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.damgard_jurik import DamgardJurikScheme
from repro.crypto.elgamal import ExponentialElGamalScheme
from repro.crypto.paillier import PaillierScheme
from repro.crypto.rng import DeterministicRandom
from repro.crypto.simulated import SimulatedPaillier

# (scheme factory, key bits, plaintext test bound)
_SCHEMES = {
    "paillier": (lambda: PaillierScheme(), 128, 2**64),
    "damgard-jurik-s1": (lambda: DamgardJurikScheme(1), 128, 2**64),
    "damgard-jurik-s2": (lambda: DamgardJurikScheme(2), 128, 2**64),
    "damgard-jurik-s3": (lambda: DamgardJurikScheme(3), 128, 2**64),
    "exp-elgamal": (lambda: ExponentialElGamalScheme(max_plaintext=1 << 17), 128, 1 << 16),
    "simulated": (lambda: SimulatedPaillier("contract"), 128, 2**64),
}


@pytest.fixture(params=sorted(_SCHEMES), scope="module")
def scheme_kit(request):
    factory, bits, bound = _SCHEMES[request.param]
    scheme = factory()
    keypair = scheme.generate(bits, "contract-%s" % request.param)
    return scheme, keypair, bound


class TestSchemeContract:
    def test_roundtrip(self, scheme_kit):
        scheme, keypair, bound = scheme_kit
        for m in (0, 1, 2, 1234, bound - 1):
            ct = scheme.encrypt(keypair.public, m, DeterministicRandom(m))
            assert scheme.decrypt(keypair.private, ct) == m

    def test_additive_homomorphism(self, scheme_kit):
        scheme, keypair, bound = scheme_kit
        a, b = bound // 3, bound // 5
        ca = scheme.encrypt(keypair.public, a, "a")
        cb = scheme.encrypt(keypair.public, b, "b")
        total = scheme.ciphertext_add(keypair.public, ca, cb)
        assert scheme.decrypt(keypair.private, total) == a + b

    def test_scalar_homomorphism(self, scheme_kit):
        scheme, keypair, bound = scheme_kit
        a = bound // 7
        ca = scheme.encrypt(keypair.public, a, "a")
        scaled = scheme.ciphertext_scale(keypair.public, ca, 6)
        assert scheme.decrypt(keypair.private, scaled) == 6 * a

    def test_identity_is_zero(self, scheme_kit):
        scheme, keypair, bound = scheme_kit
        a = bound // 2
        ca = scheme.encrypt(keypair.public, a, "a")
        combined = scheme.ciphertext_add(
            keypair.public, ca, scheme.identity(keypair.public)
        )
        assert scheme.decrypt(keypair.private, combined) == a

    def test_scale_by_zero_gives_zero(self, scheme_kit):
        scheme, keypair, bound = scheme_kit
        ca = scheme.encrypt(keypair.public, bound // 2, "a")
        zero = scheme.ciphertext_scale(keypair.public, ca, 0)
        assert scheme.decrypt(keypair.private, zero) == 0

    def test_rerandomize_preserves_plaintext(self, scheme_kit):
        scheme, keypair, bound = scheme_kit
        ca = scheme.encrypt(keypair.public, 77, "a")
        cb = scheme.rerandomize(keypair.public, ca, "fresh")
        assert cb != ca
        assert scheme.decrypt(keypair.private, cb) == 77

    def test_fresh_encryptions_distinct(self, scheme_kit):
        scheme, keypair, _ = scheme_kit
        rng = DeterministicRandom("distinct")
        cts = [scheme.encrypt(keypair.public, 5, rng) for _ in range(8)]
        assert len(set(map(repr, cts))) == 8

    def test_encrypt_vector(self, scheme_kit):
        scheme, keypair, _ = scheme_kit
        cts = scheme.encrypt_vector(keypair.public, [1, 0, 1], "v")
        decrypted = [scheme.decrypt(keypair.private, ct) for ct in cts]
        assert decrypted == [1, 0, 1]

    def test_weighted_product_is_selected_sum(self, scheme_kit):
        scheme, keypair, _ = scheme_kit
        bits = [1, 0, 1, 1, 0]
        data = [10, 20, 30, 40, 50]
        cts = scheme.encrypt_vector(keypair.public, bits, "wp")
        aggregate = scheme.weighted_product(keypair.public, cts, data)
        assert scheme.decrypt(keypair.private, aggregate) == 80

    def test_weighted_product_initial_accumulator(self, scheme_kit):
        scheme, keypair, _ = scheme_kit
        first = scheme.encrypt_vector(keypair.public, [1, 0], "w1")
        second = scheme.encrypt_vector(keypair.public, [0, 1], "w2")
        partial = scheme.weighted_product(keypair.public, first, [10, 20])
        total = scheme.weighted_product(
            keypair.public, second, [30, 40], initial=partial
        )
        assert scheme.decrypt(keypair.private, total) == 50

    def test_plaintext_modulus_bounds_everything(self, scheme_kit):
        scheme, keypair, bound = scheme_kit
        assert scheme.plaintext_modulus(keypair.public) > bound

    def test_ciphertext_size_positive(self, scheme_kit):
        scheme, keypair, _ = scheme_kit
        assert scheme.ciphertext_size_bytes(keypair.public) >= 16

    @settings(max_examples=15, deadline=None)
    @given(st.data())
    def test_affine_identity_property(self, scheme_kit, data):
        """D(E(a)^k (*) E(b)) == a*k + b for in-range operands."""
        scheme, keypair, bound = scheme_kit
        a = data.draw(st.integers(0, bound // 300))
        b = data.draw(st.integers(0, bound // 300))
        k = data.draw(st.integers(0, 100))
        ca = scheme.encrypt(keypair.public, a, DeterministicRandom(a))
        cb = scheme.encrypt(keypair.public, b, DeterministicRandom(b + 1))
        combined = scheme.ciphertext_add(
            keypair.public, scheme.ciphertext_scale(keypair.public, ca, k), cb
        )
        assert scheme.decrypt(keypair.private, combined) == a * k + b
