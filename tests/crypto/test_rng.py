"""Tests for :mod:`repro.crypto.rng`."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.rng import (
    DeterministicRandom,
    RandomSource,
    SecureRandom,
    as_random_source,
)


class TestDeterministicRandom:
    def test_same_seed_same_stream(self):
        a = DeterministicRandom("seed")
        b = DeterministicRandom("seed")
        assert [a.randbits(64) for _ in range(10)] == [
            b.randbits(64) for _ in range(10)
        ]

    def test_different_seeds_differ(self):
        a = DeterministicRandom("seed-1")
        b = DeterministicRandom("seed-2")
        assert [a.randbits(64) for _ in range(4)] != [
            b.randbits(64) for _ in range(4)
        ]

    def test_seed_types(self):
        for seed in (b"bytes", "string", 12345, 0, -7):
            assert isinstance(DeterministicRandom(seed).randbits(32), int)

    def test_negative_and_positive_int_seeds_distinct(self):
        a = DeterministicRandom(7)
        b = DeterministicRandom(-7)
        assert a.randbits(128) != b.randbits(128)

    def test_bad_seed_type(self):
        with pytest.raises(TypeError):
            DeterministicRandom(3.14)  # type: ignore[arg-type]

    def test_randbits_range(self):
        rng = DeterministicRandom("range")
        for bits in (1, 7, 8, 9, 63, 64, 65, 512):
            for _ in range(20):
                v = rng.randbits(bits)
                assert 0 <= v < (1 << bits)

    def test_randbits_zero(self):
        assert DeterministicRandom("z").randbits(0) == 0

    def test_randbits_negative_rejected(self):
        with pytest.raises(ValueError):
            DeterministicRandom("z").randbits(-1)

    def test_randbytes_length(self):
        rng = DeterministicRandom("bytes")
        assert rng.randbytes(0) == b""
        assert len(rng.randbytes(33)) == 33

    def test_bit_coverage(self):
        # Over many draws every bit position of an 8-bit draw is hit.
        rng = DeterministicRandom("coverage")
        seen_or = 0
        seen_and = 0xFF
        for _ in range(500):
            v = rng.randbits(8)
            seen_or |= v
            seen_and &= v
        assert seen_or == 0xFF
        assert seen_and == 0


class TestRangeHelpers:
    def test_randbelow_bounds(self):
        rng = DeterministicRandom("below")
        values = {rng.randbelow(10) for _ in range(300)}
        assert values == set(range(10))

    def test_randbelow_one(self):
        assert DeterministicRandom("one").randbelow(1) == 0

    def test_randbelow_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            DeterministicRandom("x").randbelow(0)

    def test_randrange(self):
        rng = DeterministicRandom("rr")
        for _ in range(100):
            v = rng.randrange(5, 9)
            assert 5 <= v < 9

    def test_randrange_empty(self):
        with pytest.raises(ValueError):
            DeterministicRandom("x").randrange(5, 5)

    @given(st.integers(1, 2**64))
    def test_randbelow_property(self, upper):
        rng = DeterministicRandom(upper)
        assert 0 <= rng.randbelow(upper) < upper


class TestSecureRandom:
    def test_basic_ranges(self):
        rng = SecureRandom()
        assert 0 <= rng.randbits(128) < 2**128
        assert 0 <= rng.randbelow(1000) < 1000
        assert len(rng.randbytes(16)) == 16
        assert rng.randbits(0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            SecureRandom().randbits(-1)
        with pytest.raises(ValueError):
            SecureRandom().randbytes(-1)

    def test_streams_differ(self):
        # Two 256-bit draws colliding would indicate a broken source.
        assert SecureRandom().randbits(256) != SecureRandom().randbits(256)


class TestCoercion:
    def test_none_gives_secure(self):
        assert isinstance(as_random_source(None), SecureRandom)

    def test_seed_gives_deterministic(self):
        src = as_random_source("seed")
        assert isinstance(src, DeterministicRandom)

    def test_passthrough(self):
        rng = DeterministicRandom("x")
        assert as_random_source(rng) is rng

    def test_abstract_interface(self):
        with pytest.raises(NotImplementedError):
            RandomSource().randbits(8)
