"""Tests for :mod:`repro.crypto.elgamal` (the ablation comparator)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.elgamal import (
    ExponentialElGamalScheme,
    SchnorrGroup,
    _PRECOMPUTED_SAFE_PRIMES,
    generate_elgamal_keypair,
)
from repro.crypto.primes import is_probable_prime
from repro.crypto.rng import DeterministicRandom
from repro.exceptions import DecryptionError, KeyGenerationError


@pytest.fixture(scope="module")
def keypair():
    return generate_elgamal_keypair(128, "elgamal-test")


@pytest.fixture(scope="module")
def scheme():
    return ExponentialElGamalScheme(max_plaintext=1 << 16)


class TestGroup:
    def test_precomputed_primes_are_safe(self):
        for p in _PRECOMPUTED_SAFE_PRIMES.values():
            assert is_probable_prime(p)
            assert is_probable_prime((p - 1) // 2)

    def test_generator_in_subgroup(self, keypair):
        group = keypair.public.group
        assert group.contains(group.g)
        assert not group.contains(0)
        assert not group.contains(group.p)

    def test_rejects_non_safe_prime(self):
        with pytest.raises(KeyGenerationError):
            SchnorrGroup(13)  # prime, but (13-1)/2 = 6 is composite
        with pytest.raises(KeyGenerationError):
            SchnorrGroup(15)  # not prime

    def test_generator_has_order_q(self, keypair):
        group = keypair.public.group
        assert pow(group.g, group.q, group.p) == 1
        assert pow(group.g, 2, group.p) != 1


class TestRoundtrip:
    def test_basic(self, keypair, scheme):
        c = scheme.encrypt(keypair.public, 1234, "r")
        assert scheme.decrypt(keypair.private, c) == 1234

    def test_zero(self, keypair, scheme):
        c = scheme.encrypt(keypair.public, 0, "r")
        assert scheme.decrypt(keypair.private, c) == 0

    def test_bound_enforced(self, keypair):
        tight = ExponentialElGamalScheme(max_plaintext=100)
        c = tight.encrypt(keypair.public, 101, "r")
        with pytest.raises(DecryptionError):
            tight.decrypt(keypair.private, c)

    def test_rejects_bad_bound(self):
        with pytest.raises(ValueError):
            ExponentialElGamalScheme(max_plaintext=0)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 1 << 16))
    def test_roundtrip_property(self, keypair, scheme, m):
        c = scheme.encrypt(keypair.public, m, DeterministicRandom(m))
        assert scheme.decrypt(keypair.private, c) == m


class TestHomomorphism:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 1 << 14), st.integers(0, 1 << 14))
    def test_additive(self, keypair, scheme, a, b):
        pk, sk = keypair
        ca = scheme.encrypt(pk, a, DeterministicRandom(a))
        cb = scheme.encrypt(pk, b, DeterministicRandom(b + 1))
        assert scheme.decrypt(sk, scheme.ciphertext_add(pk, ca, cb)) == a + b

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 1 << 10), st.integers(0, 63))
    def test_scalar(self, keypair, scheme, a, k):
        pk, sk = keypair
        ca = scheme.encrypt(pk, a, DeterministicRandom(a))
        assert scheme.decrypt(sk, scheme.ciphertext_scale(pk, ca, k)) == a * k

    def test_identity(self, keypair, scheme):
        pk, sk = keypair
        c = scheme.encrypt(pk, 55, "r")
        combined = scheme.ciphertext_add(pk, c, scheme.identity(pk))
        assert scheme.decrypt(sk, combined) == 55

    def test_rerandomize(self, keypair, scheme):
        pk, sk = keypair
        c = scheme.encrypt(pk, 7, "r")
        c2 = scheme.rerandomize(pk, c, "r2")
        assert c2 != c
        assert scheme.decrypt(sk, c2) == 7


class TestSchemeMetadata:
    def test_sizes(self, keypair, scheme):
        assert scheme.ciphertext_size_bytes(keypair.public) == 32  # 2 * 128 bits
        assert scheme.plaintext_modulus(keypair.public) == keypair.public.group.q
        assert scheme.name == "exp-elgamal"

    def test_encryptions_randomized(self, keypair, scheme):
        rng = DeterministicRandom("distinct")
        cs = {scheme.encrypt(keypair.public, 5, rng) for _ in range(10)}
        assert len(cs) == 10

    def test_key_equality(self):
        a = generate_elgamal_keypair(128, "same")
        b = generate_elgamal_keypair(128, "same")
        assert a.public == b.public
        assert hash(a.public) == hash(b.public)
