"""Tests for :mod:`repro.crypto.simulated` — including the equivalence
property that justifies using it for paper-scale experiments: for any
program written against the scheme interface, the simulated scheme and
real Paillier decrypt to identical values.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.paillier import PaillierScheme, generate_keypair
from repro.crypto.rng import DeterministicRandom
from repro.crypto.simulated import SimulatedPaillier
from repro.exceptions import EncryptionError, KeyMismatchError


@pytest.fixture()
def sim():
    return SimulatedPaillier("sim-test")


class TestBasics:
    def test_roundtrip(self, sim):
        kp = sim.generate(512)
        c = sim.encrypt(kp.public, 12345)
        assert sim.decrypt(kp.private, c) == 12345

    def test_modulus_size(self, sim):
        kp = sim.generate(512)
        assert kp.public.bits == 512
        assert sim.ciphertext_size_bytes(kp.public) == 128  # like real 512-bit

    def test_fresh_encryptions_distinct(self, sim):
        kp = sim.generate(128)
        a = sim.encrypt(kp.public, 7)
        b = sim.encrypt(kp.public, 7)
        assert a != b  # mirrors semantic security

    def test_identity_deterministic(self, sim):
        kp = sim.generate(128)
        assert sim.identity(kp.public) == sim.identity(kp.public)

    def test_key_separation(self, sim):
        kp1 = sim.generate(128)
        kp2 = sim.generate(128)
        c = sim.encrypt(kp1.public, 1)
        with pytest.raises(KeyMismatchError):
            sim.decrypt(kp2.private, c)
        with pytest.raises(KeyMismatchError):
            sim.ciphertext_add(kp2.public, c, c)

    def test_signed_encoding(self, sim):
        kp = sim.generate(128)
        pk = kp.public
        assert pk.decode_signed(pk.encode_signed(-42)) == -42
        with pytest.raises(EncryptionError):
            pk.encode_signed(pk.n)

    def test_rerandomize_preserves_plaintext(self, sim):
        kp = sim.generate(128)
        c = sim.encrypt(kp.public, 9)
        c2 = sim.rerandomize(kp.public, c)
        assert c2 != c
        assert sim.decrypt(kp.private, c2) == 9


class TestAlgebra:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 2**64), st.integers(0, 2**64), st.integers(0, 2**32))
    def test_homomorphic_identities(self, a, b, k):
        sim = SimulatedPaillier("alg")
        kp = sim.generate(256)
        pk, sk = kp
        ca, cb = sim.encrypt(pk, a), sim.encrypt(pk, b)
        assert sim.decrypt(sk, sim.ciphertext_add(pk, ca, cb)) == (a + b) % pk.n
        assert sim.decrypt(sk, sim.ciphertext_scale(pk, ca, k)) == a * k % pk.n


class TestEquivalenceWithRealPaillier:
    """Run the same straight-line program on both schemes and compare.

    This is the load-bearing property for the reproduction: the benches
    run on the simulated scheme, and this test family is why that is
    trustworthy (DESIGN.md §3 substitution 1).
    """

    def _run_program(self, scheme, keypair, indices, data):
        pk, sk = keypair
        rng = DeterministicRandom("equiv")
        cts = scheme.encrypt_vector(pk, indices, rng)
        agg = scheme.weighted_product(pk, cts, data)
        return scheme.decrypt(sk, agg)

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(st.integers(0, 1), min_size=1, max_size=30),
        st.data(),
    )
    def test_selected_sum_program_agrees(self, indices, data):
        values = data.draw(
            st.lists(
                st.integers(0, 2**32 - 1),
                min_size=len(indices),
                max_size=len(indices),
            )
        )
        real = PaillierScheme()
        real_kp = generate_keypair(128, "equiv-key")
        sim = SimulatedPaillier("equiv")
        sim_kp = sim.generate(128)

        expected = sum(i * x for i, x in zip(indices, values))
        assert self._run_program(real, real_kp, indices, values) == expected
        assert self._run_program(sim, sim_kp, indices, values) == expected
