"""Tests for :mod:`repro.crypto.paillier` — the paper's cryptosystem.

Key sizes here are small (64–256 bits) so the suite stays fast; the
arithmetic is size-independent.  The paper's 512-bit size is exercised
once in the integration tests and in the live microbenchmarks.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.paillier import (
    EncryptedNumber,
    PaillierPublicKey,
    PaillierScheme,
    RandomnessPool,
    generate_keypair,
)
from repro.crypto.rng import DeterministicRandom
from repro.exceptions import (
    DecryptionError,
    EncryptionError,
    KeyGenerationError,
    KeyMismatchError,
)


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(128, "paillier-test-key")


@pytest.fixture(scope="module")
def other_keypair():
    return generate_keypair(128, "other-test-key")


class TestKeyGeneration:
    def test_modulus_size(self, keypair):
        assert 126 <= keypair.public.bits <= 128

    def test_rejects_tiny_keys(self):
        with pytest.raises(KeyGenerationError):
            generate_keypair(8)

    def test_deterministic_with_seed(self):
        a = generate_keypair(64, "same-seed")
        b = generate_keypair(64, "same-seed")
        assert a.public.n == b.public.n

    def test_private_key_validates_factors(self, keypair):
        from repro.crypto.paillier import PaillierPrivateKey

        with pytest.raises(KeyGenerationError):
            PaillierPrivateKey(keypair.public, 3, 5)

    def test_public_key_equality_and_hash(self, keypair, other_keypair):
        clone = PaillierPublicKey(keypair.public.n)
        assert clone == keypair.public
        assert hash(clone) == hash(keypair.public)
        assert clone != other_keypair.public


class TestRawRoundtrip:
    def test_zero_and_one(self, keypair):
        for m in (0, 1):
            c = keypair.public.encrypt_raw(m, DeterministicRandom(m))
            assert keypair.private.raw_decrypt(c) == m

    def test_rejects_out_of_range_plaintext(self, keypair):
        with pytest.raises(EncryptionError):
            keypair.public.raw_encrypt(keypair.public.n, 1)
        with pytest.raises(EncryptionError):
            keypair.public.raw_encrypt(-1, 1)

    def test_rejects_out_of_range_ciphertext(self, keypair):
        with pytest.raises(DecryptionError):
            keypair.private.raw_decrypt(keypair.public.nsquare)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 2**96))
    def test_roundtrip_property(self, keypair, m):
        m %= keypair.public.n
        c = keypair.public.encrypt_raw(m, DeterministicRandom(m))
        assert keypair.private.raw_decrypt(c) == m


class TestSemanticSecurityShape:
    def test_encryptions_are_randomized(self, keypair):
        rng = DeterministicRandom("randomized")
        cs = {keypair.public.encrypt_raw(7, rng) for _ in range(10)}
        assert len(cs) == 10  # same plaintext, all distinct ciphertexts

    def test_obfuscator_is_unit(self, keypair):
        # r^n must be invertible mod n^2 for decryption to work.
        from repro.crypto.ntheory import modinv

        ob = keypair.public.obfuscator(DeterministicRandom("ob"))
        assert modinv(ob, keypair.public.nsquare) is not None


class TestHomomorphism:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 2**40), st.integers(0, 2**40))
    def test_additive(self, keypair, a, b):
        pk, sk = keypair
        ca = pk.encrypt_raw(a, DeterministicRandom(a))
        cb = pk.encrypt_raw(b, DeterministicRandom(b + 1))
        assert sk.raw_decrypt(ca * cb % pk.nsquare) == (a + b) % pk.n

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 2**40), st.integers(0, 2**32))
    def test_scalar(self, keypair, a, k):
        pk, sk = keypair
        ca = pk.encrypt_raw(a, DeterministicRandom(a))
        assert sk.raw_decrypt(pow(ca, k, pk.nsquare)) == a * k % pk.n

    def test_paper_protocol_identity(self, keypair):
        """The exact identity of paper §2: prod E(I_i)^{x_i} = E(sum I_i x_i)."""
        pk, sk = keypair
        rng = DeterministicRandom("protocol")
        indices = [1, 0, 1, 1, 0, 0, 1]
        data = [17, 23, 4, 99, 56, 3, 40]
        encrypted = [pk.encrypt_raw(i, rng) for i in indices]
        product = 1
        for c, x in zip(encrypted, data):
            product = product * pow(c, x, pk.nsquare) % pk.nsquare
        expected = sum(i * x for i, x in zip(indices, data))
        assert sk.raw_decrypt(product) == expected


class TestSignedEncoding:
    def test_roundtrip_signed(self, keypair):
        pk = keypair.public
        for v in (0, 1, -1, 12345, -12345, pk.max_int, -pk.max_int):
            assert pk.decode_signed(pk.encode_signed(v)) == v

    def test_rejects_overflow(self, keypair):
        with pytest.raises(EncryptionError):
            keypair.public.encode_signed(keypair.public.max_int + 1)

    def test_gap_detected(self, keypair):
        pk = keypair.public
        with pytest.raises(DecryptionError):
            pk.decode_signed(pk.max_int + 5)

    def test_decode_validates_range(self, keypair):
        with pytest.raises(DecryptionError):
            keypair.public.decode_signed(-1)


class TestEncryptedNumber:
    def test_add_encrypted(self, keypair):
        a = EncryptedNumber.encrypt(keypair.public, 20, "a")
        b = EncryptedNumber.encrypt(keypair.public, 22, "b")
        assert (a + b).decrypt(keypair.private) == 42

    def test_add_plain(self, keypair):
        a = EncryptedNumber.encrypt(keypair.public, 40, "a")
        assert (a + 2).decrypt(keypair.private) == 42
        assert (2 + a).decrypt(keypair.private) == 42

    def test_negative_values(self, keypair):
        a = EncryptedNumber.encrypt(keypair.public, -15, "a")
        b = EncryptedNumber.encrypt(keypair.public, 10, "b")
        assert (a + b).decrypt(keypair.private) == -5

    def test_scalar_multiplication(self, keypair):
        a = EncryptedNumber.encrypt(keypair.public, 7, "a")
        assert (a * 6).decrypt(keypair.private) == 42
        assert (6 * a).decrypt(keypair.private) == 42
        assert (a * -2).decrypt(keypair.private) == -14

    def test_subtraction_and_negation(self, keypair):
        a = EncryptedNumber.encrypt(keypair.public, 50, "a")
        b = EncryptedNumber.encrypt(keypair.public, 8, "b")
        assert (a - b).decrypt(keypair.private) == 42
        assert (-a).decrypt(keypair.private) == -50
        assert (100 - a).decrypt(keypair.private) == 50

    def test_key_mismatch_rejected(self, keypair, other_keypair):
        a = EncryptedNumber.encrypt(keypair.public, 1, "a")
        b = EncryptedNumber.encrypt(other_keypair.public, 1, "b")
        with pytest.raises(KeyMismatchError):
            _ = a + b
        with pytest.raises(KeyMismatchError):
            a.decrypt(other_keypair.private)

    def test_non_int_operands_rejected(self, keypair):
        a = EncryptedNumber.encrypt(keypair.public, 1, "a")
        with pytest.raises(TypeError):
            _ = a * 1.5  # type: ignore[operator]

    def test_obfuscate_changes_ciphertext_not_plaintext(self, keypair):
        a = EncryptedNumber.encrypt(keypair.public, 33, "a")
        b = a.obfuscate("fresh")
        assert b.ciphertext != a.ciphertext
        assert b.decrypt(keypair.private) == 33

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(-(2**30), 2**30),
        st.integers(-(2**30), 2**30),
        st.integers(-100, 100),
    )
    def test_affine_property(self, keypair, a, b, k):
        ea = EncryptedNumber.encrypt(keypair.public, a, DeterministicRandom(a))
        eb = EncryptedNumber.encrypt(keypair.public, b, DeterministicRandom(b))
        assert (ea * k + eb).decrypt(keypair.private) == a * k + b


class TestRandomnessPool:
    def test_precompute_and_take(self, keypair):
        pool = RandomnessPool(keypair.public, "pool")
        pool.precompute(5)
        assert len(pool) == 5
        c = EncryptedNumber.encrypt(keypair.public, 9, pool=pool)
        assert c.decrypt(keypair.private) == 9
        assert len(pool) == 4
        assert pool.misses == 0

    def test_miss_counting(self, keypair):
        pool = RandomnessPool(keypair.public, "pool2")
        c = EncryptedNumber.encrypt(keypair.public, 5, pool=pool)
        assert c.decrypt(keypair.private) == 5
        assert pool.misses == 1

    def test_rejects_negative_count(self, keypair):
        with pytest.raises(ValueError):
            RandomnessPool(keypair.public).precompute(-1)


class TestSchemeInterface:
    def test_roundtrip_and_algebra(self, keypair):
        scheme = PaillierScheme()
        pk, sk = keypair
        a = scheme.encrypt(pk, 30, "a")
        b = scheme.encrypt(pk, 12, "b")
        total = scheme.ciphertext_add(pk, a, b)
        assert scheme.decrypt(sk, total) == 42
        assert scheme.decrypt(sk, scheme.ciphertext_scale(pk, a, 3)) == 90
        assert scheme.decrypt(sk, scheme.identity(pk)) == 0

    def test_weighted_product(self, keypair):
        scheme = PaillierScheme()
        pk, sk = keypair
        bits = [1, 0, 1, 0]
        weights = [10, 20, 30, 40]
        cts = scheme.encrypt_vector(pk, bits, DeterministicRandom("wp"))
        agg = scheme.weighted_product(pk, cts, weights)
        assert scheme.decrypt(sk, agg) == 40

    def test_weighted_product_validates_lengths(self, keypair):
        scheme = PaillierScheme()
        with pytest.raises(ValueError):
            scheme.weighted_product(keypair.public, [1], [1, 2])

    def test_rerandomize(self, keypair):
        scheme = PaillierScheme()
        pk, sk = keypair
        c = scheme.encrypt(pk, 77, "r")
        c2 = scheme.rerandomize(pk, c, "r2")
        assert c2 != c
        assert scheme.decrypt(sk, c2) == 77

    def test_metadata(self, keypair):
        scheme = PaillierScheme()
        assert scheme.plaintext_modulus(keypair.public) == keypair.public.n
        assert scheme.ciphertext_size_bytes(keypair.public) == 32  # 2*128 bits
        assert scheme.name == "paillier"


class TestSerialization:
    def test_public_key_roundtrip(self, keypair):
        data = keypair.public.to_bytes()
        assert PaillierPublicKey.from_bytes(data) == keypair.public

    def test_ciphertext_roundtrip(self, keypair):
        pk = keypair.public
        c = pk.encrypt_raw(123, DeterministicRandom("ser"))
        data = pk.ciphertext_to_bytes(c)
        assert len(data) == 32
        assert pk.ciphertext_from_bytes(data) == c

    def test_ciphertext_range_validated(self, keypair):
        pk = keypair.public
        data = pk.nsquare.to_bytes(33, "big")  # value == n^2 is out of range
        with pytest.raises(DecryptionError):
            pk.ciphertext_from_bytes(data)


class TestUntrustedDeserialization:
    """from_bytes/ciphertext_from_bytes face wire data: reject, not accept."""

    def test_zero_ciphertext_rejected(self, keypair):
        pk = keypair.public
        with pytest.raises(DecryptionError):
            pk.ciphertext_from_bytes(b"\x00" * 32)

    def test_oversized_ciphertext_rejected(self, keypair):
        pk = keypair.public
        over = (pk.nsquare + 12345).to_bytes(33, "big")
        with pytest.raises(DecryptionError):
            pk.ciphertext_from_bytes(over)

    @pytest.mark.parametrize("n", [0, 1])
    def test_degenerate_modulus_rejected(self, n):
        from repro.exceptions import KeyGenerationError

        with pytest.raises(KeyGenerationError):
            PaillierPublicKey.from_bytes(n.to_bytes(8, "big"))

    def test_empty_key_serialization_rejected(self):
        from repro.exceptions import KeyGenerationError

        with pytest.raises(KeyGenerationError):
            PaillierPublicKey.from_bytes(b"")

    def test_honest_values_still_roundtrip(self, keypair):
        pk = keypair.public
        assert PaillierPublicKey.from_bytes(pk.to_bytes()) == pk
        c = pk.encrypt_raw(5, DeterministicRandom("untrusted"))
        assert pk.ciphertext_from_bytes(pk.ciphertext_to_bytes(c)) == c


class TestNonUnitCiphertextRejected:
    """ciphertext_from_bytes must reject non-units of Z_{n^2} (gcd > 1).

    A ciphertext sharing a factor with n is never produced by honest
    encryption; accepting one would poison aggregates (and hand a factor
    of the modulus to anyone who inspects it).  Regression test for the
    docstring/behaviour mismatch where only the range was checked.
    """

    def test_prime_factor_rejected(self, keypair):
        pk, sk = keypair.public, keypair.private
        data = pk.ciphertext_to_bytes(sk.p)
        with pytest.raises(DecryptionError):
            pk.ciphertext_from_bytes(data)

    def test_multiple_of_n_rejected(self, keypair):
        pk = keypair.public
        data = pk.ciphertext_to_bytes(pk.n * 7)
        with pytest.raises(DecryptionError):
            pk.ciphertext_from_bytes(data)

    def test_matches_protocol_validator(self, keypair):
        # The wire parser and repro.spfe.validation.check_ciphertext must
        # agree on what an acceptable ciphertext is.
        from repro.exceptions import ValidationError
        from repro.spfe.validation import check_ciphertext

        pk, sk = keypair.public, keypair.private
        with pytest.raises(ValidationError):
            check_ciphertext(sk.q, pk.n, pk.nsquare)


class TestSubtractionRegression:
    """enc - int and enc - enc, pinned against the rewritten __sub__."""

    def test_enc_minus_int(self, keypair):
        a = EncryptedNumber.encrypt(keypair.public, 42, "sub-a")
        assert (a - 12).decrypt(keypair.private) == 30
        assert (a - (-8)).decrypt(keypair.private) == 50

    def test_enc_minus_enc(self, keypair):
        a = EncryptedNumber.encrypt(keypair.public, 7, "sub-b")
        b = EncryptedNumber.encrypt(keypair.public, 19, "sub-c")
        assert (a - b).decrypt(keypair.private) == -12
        assert (b - a).decrypt(keypair.private) == 12

    def test_int_minus_enc(self, keypair):
        a = EncryptedNumber.encrypt(keypair.public, 13, "sub-d")
        assert (100 - a).decrypt(keypair.private) == 87

    def test_unsupported_operand_rejected(self, keypair):
        a = EncryptedNumber.encrypt(keypair.public, 1, "sub-e")
        with pytest.raises(TypeError):
            _ = a - 1.5  # type: ignore[operator]

    @settings(max_examples=25, deadline=None)
    @given(st.integers(-(2**30), 2**30), st.integers(-(2**30), 2**30))
    def test_subtraction_property(self, keypair, a, b):
        ea = EncryptedNumber.encrypt(keypair.public, a, DeterministicRandom(a))
        eb = EncryptedNumber.encrypt(keypair.public, b, DeterministicRandom(b))
        assert (ea - eb).decrypt(keypair.private) == a - b
        assert (ea - b).decrypt(keypair.private) == a - b


class TestRandomnessPoolConcurrency:
    def test_concurrent_drain_keeps_accounting_exact(self, keypair):
        import threading

        pool = RandomnessPool(keypair.public, "pool-concurrent")
        pool.precompute(40)
        assert pool.generated == 40

        taken = []
        taken_lock = threading.Lock()

        def drain():
            for _ in range(20):
                value = pool.take()
                with taken_lock:
                    taken.append(value)

        threads = [threading.Thread(target=drain) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        # 80 takes against 40 precomputed: exactly 40 misses, pool empty,
        # and every obfuscator handed out exactly once (no double-pop).
        assert len(taken) == 80
        assert pool.misses == 40
        assert pool.generated == 40
        assert len(pool) == 0

    def test_concurrent_precompute_counts_every_item(self, keypair):
        import threading

        pool = RandomnessPool(keypair.public, "pool-fill")
        threads = [
            threading.Thread(target=pool.precompute, args=(10,))
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert pool.generated == 40
        assert len(pool) == 40


class TestRandomnessPoolFixedBase:
    def test_fixed_base_obfuscators_encrypt_correctly(self, keypair):
        pool = RandomnessPool(keypair.public, "pool-fb", fixed_base=True)
        pool.precompute(6)
        for value in (0, 1, 12345):
            c = EncryptedNumber.encrypt(keypair.public, value, pool=pool)
            assert c.decrypt(keypair.private) == value

    def test_fixed_base_seeded_pool_is_deterministic(self, keypair):
        a = RandomnessPool(keypair.public, "pool-det", fixed_base=True)
        b = RandomnessPool(keypair.public, "pool-det", fixed_base=True)
        a.precompute(5)
        b.precompute(5)
        assert [a.take() for _ in range(5)] == [b.take() for _ in range(5)]

    def test_fixed_base_obfuscators_are_valid_powers(self, keypair):
        # Every fixed-base obfuscator must be r^n mod n^2 for some unit r
        # — decrypting E(0) with it must yield 0.
        pk, sk = keypair.public, keypair.private
        pool = RandomnessPool(keypair.public, "pool-valid", fixed_base=True)
        for _ in range(4):
            obf = pool.take()
            assert sk.raw_decrypt(pk.raw_encrypt(0, obf)) == 0

    def test_window_override(self, keypair):
        pool = RandomnessPool(
            keypair.public, "pool-window", fixed_base=True, window=4
        )
        pool.precompute(3)
        c = EncryptedNumber.encrypt(keypair.public, 7, pool=pool)
        assert c.decrypt(keypair.private) == 7


class TestCrtEncryption:
    """CRT-split encryption: half-width exponentiations, identical bytes."""

    def test_obfuscator_from_r_matches_full_pow(self, keypair):
        pk, sk = keypair.public, keypair.private
        rng = DeterministicRandom("crt-obf")
        for _ in range(10):
            r = rng.randrange(1, pk.n)
            if __import__("math").gcd(r, pk.n) != 1:
                continue
            assert sk.obfuscator_from_r(r) == pow(r, pk.n, pk.nsquare)

    def test_encrypt_raw_crt_is_byte_identical(self, keypair):
        pk, sk = keypair.public, keypair.private
        for m in (0, 1, 12345, pk.n - 1):
            seed = "crt-enc-%d" % m
            assert sk.encrypt_raw_crt(m, seed) == pk.encrypt_raw(m, seed)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**64), st.integers())
    def test_crt_roundtrip_property(self, keypair, m, seed):
        pk, sk = keypair.public, keypair.private
        plaintext = m % pk.n
        ciphertext = sk.encrypt_raw_crt(plaintext, DeterministicRandom(seed))
        assert ciphertext == pk.encrypt_raw(plaintext, DeterministicRandom(seed))
        assert sk.raw_decrypt(ciphertext) == plaintext


class TestTakeMany:
    def test_matches_sequential_takes(self, keypair):
        a = RandomnessPool(keypair.public, "many-vs-take")
        b = RandomnessPool(keypair.public, "many-vs-take")
        a.precompute(6)
        b.precompute(6)
        assert a.take_many(6) == [b.take() for _ in range(6)]

    def test_shortfall_counts_misses(self, keypair):
        pool = RandomnessPool(keypair.public, "many-short")
        pool.precompute(3)
        values = pool.take_many(5)
        assert len(values) == 5
        assert pool.misses == 2
        assert len(pool) == 0
        # every value is a valid obfuscator: E(0) built from it decrypts to 0
        pk, sk = keypair.public, keypair.private
        for obf in values:
            assert sk.raw_decrypt(pk.raw_encrypt(0, obf)) == 0

    def test_zero_and_negative(self, keypair):
        pool = RandomnessPool(keypair.public, "many-edge")
        assert pool.take_many(0) == []
        with pytest.raises(ValueError):
            pool.take_many(-1)


class TestRefillDoesNotBlockConsumers:
    """Regression: generate-then-swap — the pool lock must be free while
    a refill runs its modular exponentiations."""

    def test_lock_is_free_during_refill_pow(self, keypair, monkeypatch):
        import builtins
        import threading

        pool = RandomnessPool(keypair.public, "refill-block")
        real_pow = builtins.pow
        in_pow = threading.Event()
        proceed = threading.Event()
        refill_thread_id = []

        def instrumented_pow(*args):
            if (
                len(args) == 3
                and args[2] == keypair.public.nsquare
                and threading.get_ident() in refill_thread_id
            ):
                in_pow.set()
                assert proceed.wait(timeout=10)
            return real_pow(*args)

        monkeypatch.setattr(builtins, "pow", instrumented_pow)
        refill_thread_id.append(None)  # placeholder filled in by the thread

        def run():
            refill_thread_id[0] = threading.get_ident()
            pool.precompute(1)

        refiller = threading.Thread(target=run)
        refiller.start()
        try:
            assert in_pow.wait(timeout=10), "refill never reached its pow"
            # The refill is mid-exponentiation.  Under the old
            # compute-under-lock design this acquire would block until
            # the pow finished; generate-then-swap keeps it free.
            acquired = pool._lock.acquire(timeout=1)
            assert acquired, "pool lock held during refill exponentiation"
            pool._lock.release()
        finally:
            proceed.set()
            refiller.join(timeout=10)
        assert not refiller.is_alive()
        assert len(pool) == 1

    def test_takes_complete_while_refill_hammers(self, keypair):
        import threading

        pool = RandomnessPool(keypair.public, "refill-hammer")
        stop = threading.Event()
        errors = []

        def refill():
            try:
                while not stop.is_set():
                    pool.precompute(RandomnessPool.REFILL_BATCH)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        refiller = threading.Thread(target=refill)
        refiller.start()
        try:
            pk, sk = keypair.public, keypair.private
            for _ in range(50):
                obf = pool.take()
                assert sk.raw_decrypt(pk.raw_encrypt(0, obf)) == 0
        finally:
            stop.set()
            refiller.join(timeout=30)
        assert not errors
        assert not refiller.is_alive()
        # accounting stays exact under the race: everything ever pooled
        # was either taken or is still pooled
        assert pool.generated + pool.misses >= 50


class TestSchemeRerandomizeVector:
    def test_base_path_preserves_plaintexts(self, keypair):
        scheme = PaillierScheme()
        pk, sk = keypair.public, keypair.private
        cts = [pk.encrypt_raw(m, "rrv-%d" % m) for m in (1, 2, 3)]
        fresh = scheme.rerandomize_vector(pk, cts, "rrv-seed")
        assert len(fresh) == 3
        assert all(a != b for a, b in zip(fresh, cts))
        assert [sk.raw_decrypt(c) for c in fresh] == [1, 2, 3]

    def test_pooled_path_drains_the_pool(self, keypair):
        pk, sk = keypair.public, keypair.private
        pool = RandomnessPool(pk, "rrv-pool")
        pool.precompute(4)
        scheme = PaillierScheme(pool=pool)
        cts = [pk.encrypt_raw(m, "rrvp-%d" % m) for m in (7, 8)]
        fresh = scheme.rerandomize_vector(pk, cts)
        assert [sk.raw_decrypt(c) for c in fresh] == [7, 8]
        assert len(pool) == 2  # two obfuscators drained
        assert pool.misses == 0

    def test_mismatched_pool_is_ignored(self, keypair, other_keypair):
        pool = RandomnessPool(other_keypair.public, "rrv-wrong")
        pool.precompute(2)
        scheme = PaillierScheme(pool=pool)
        pk, sk = keypair.public, keypair.private
        cts = [pk.encrypt_raw(5, "rrv-mismatch")]
        fresh = scheme.rerandomize_vector(pk, cts, "rrv-mismatch-2")
        assert sk.raw_decrypt(fresh[0]) == 5
        assert len(pool) == 2  # untouched: it belongs to another key
