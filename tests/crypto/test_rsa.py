"""Tests for :mod:`repro.crypto.rsa` (the OT trapdoor permutation)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.rng import DeterministicRandom
from repro.crypto.rsa import generate_rsa_keypair
from repro.exceptions import KeyGenerationError


@pytest.fixture(scope="module")
def keypair():
    return generate_rsa_keypair(128, "rsa-test")


class TestKeyGeneration:
    def test_modulus_size(self, keypair):
        assert 126 <= keypair.public.n.bit_length() <= 128

    def test_rejects_tiny(self):
        with pytest.raises(KeyGenerationError):
            generate_rsa_keypair(16)

    def test_deterministic(self):
        a = generate_rsa_keypair(64, "seed")
        b = generate_rsa_keypair(64, "seed")
        assert a.public.n == b.public.n

    def test_ed_inverse(self, keypair):
        phi = (keypair.private.p - 1) * (keypair.private.q - 1)
        assert keypair.public.e * keypair.private.d % phi == 1


class TestPermutation:
    def test_apply_invert_roundtrip(self, keypair):
        x = 123456789
        assert keypair.private.invert(keypair.public.apply(x)) == x

    def test_invert_apply_roundtrip(self, keypair):
        y = 987654321
        assert keypair.public.apply(keypair.private.invert(y)) == y

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2**120))
    def test_bijection_property(self, keypair, x):
        x %= keypair.public.n
        assert keypair.private.invert(keypair.public.apply(x)) == x

    def test_random_element_in_range(self, keypair):
        rng = DeterministicRandom("elem")
        for _ in range(20):
            assert 0 <= keypair.public.random_element(rng) < keypair.public.n

    def test_key_equality(self):
        a = generate_rsa_keypair(64, "eq")
        b = generate_rsa_keypair(64, "eq")
        assert a.public == b.public
        assert hash(a.public) == hash(b.public)
