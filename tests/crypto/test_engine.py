"""Tests for the multi-process crypto engine.

The engine's contract has two halves: *correctness* (results equal the
serial kernels, ciphertexts decrypt to the right plaintexts) and
*determinism* (a seeded run is byte-identical whether chunks execute
in-process or on N workers, because chunking and per-chunk seed
derivation never depend on the worker count).  Pool failures must
degrade to serial execution, never to wrong answers.
"""

import pytest

from repro.crypto.engine import DEFAULT_CHUNK_SIZE, CryptoEngine
from repro.crypto.paillier import PaillierScheme, generate_keypair
from repro.crypto.rng import DeterministicRandom
from repro.crypto.simulated import SimulatedPaillier
from repro.exceptions import ParameterError

KEY_BITS = 128


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(KEY_BITS, "engine-tests")


class TestEncryptVector:
    def test_serial_matches_scheme_encryption(self, keypair):
        public, private = keypair.public, keypair.private
        plaintexts = list(range(40))
        with CryptoEngine(workers=1, chunk_size=16) as engine:
            cts = engine.encrypt_vector(public, plaintexts, "enc-seed")
        assert [private.raw_decrypt(ct) for ct in cts] == plaintexts

    def test_parallel_matches_serial_byte_for_byte(self, keypair):
        public = keypair.public
        plaintexts = list(range(50))
        with CryptoEngine(workers=1, chunk_size=8) as serial:
            expected = serial.encrypt_vector(public, plaintexts, "determinism")
        with CryptoEngine(workers=3, chunk_size=8) as parallel:
            got = parallel.encrypt_vector(public, plaintexts, "determinism")
        assert got == expected

    def test_fixed_base_ciphertexts_decrypt(self, keypair):
        public, private = keypair.public, keypair.private
        plaintexts = [0, 1, 17, 255, public.n - 1]
        with CryptoEngine(workers=1, fixed_base=True, chunk_size=4) as engine:
            cts = engine.encrypt_vector(public, plaintexts, "fixed-base")
        assert [private.raw_decrypt(ct) for ct in cts] == plaintexts

    def test_fixed_base_seeded_runs_are_deterministic(self, keypair):
        public = keypair.public
        runs = []
        for _ in range(2):
            with CryptoEngine(workers=1, fixed_base=True, chunk_size=8) as engine:
                runs.append(engine.encrypt_vector(public, list(range(20)), "fb"))
        assert runs[0] == runs[1]

    def test_empty_vector(self, keypair):
        with CryptoEngine() as engine:
            assert engine.encrypt_vector(keypair.public, [], "x") == ()

    def test_rejects_non_paillier_key(self):
        simulated = SimulatedPaillier()
        pair = simulated.generate(128, "sim")
        with CryptoEngine() as engine:
            assert not engine.supports_key(pair.public)
            with pytest.raises(ParameterError):
                engine.encrypt_vector(pair.public, [1, 2], "x")


class TestWeightedProduct:
    def _naive(self, public, cts, weights, initial=None):
        acc = 1 if initial is None else initial % public.nsquare
        for ct, w in zip(cts, weights):
            acc = acc * pow(ct, w % public.n, public.nsquare) % public.nsquare
        return acc

    def test_matches_naive_fold(self, keypair):
        public = keypair.public
        rng = DeterministicRandom("wp")
        cts = [public.encrypt_raw(i, rng) for i in range(30)]
        weights = [rng.randrange(0, 1 << 32) for _ in cts]
        with CryptoEngine(workers=1, chunk_size=7) as engine:
            got = engine.weighted_product(
                public.nsquare, public.n, cts, weights
            )
        assert got == self._naive(public, cts, weights)

    def test_initial_and_worker_count_invariance(self, keypair):
        public = keypair.public
        rng = DeterministicRandom("wp-init")
        cts = [public.encrypt_raw(i + 1, rng) for i in range(25)]
        weights = list(range(25))
        initial = public.encrypt_raw(99, rng)
        expected = self._naive(public, cts, weights, initial)
        for workers in (1, 3):
            with CryptoEngine(workers=workers, chunk_size=6) as engine:
                assert (
                    engine.weighted_product(
                        public.nsquare, public.n, cts, weights, initial
                    )
                    == expected
                )

    def test_no_multiexp_path_matches(self, keypair):
        public = keypair.public
        rng = DeterministicRandom("wp-naive")
        cts = [public.encrypt_raw(i, rng) for i in range(12)]
        weights = [0, 1, 2, 3] * 3
        with CryptoEngine(workers=1, use_multiexp=False) as engine:
            got = engine.weighted_product(public.nsquare, public.n, cts, weights)
        assert got == self._naive(public, cts, weights)

    def test_empty_batch_returns_initial(self, keypair):
        public = keypair.public
        with CryptoEngine() as engine:
            assert engine.weighted_product(public.nsquare, public.n, [], []) == 1
            assert (
                engine.weighted_product(public.nsquare, public.n, [], [], 7) == 7
            )

    def test_rejects_length_mismatch(self, keypair):
        public = keypair.public
        with CryptoEngine() as engine:
            with pytest.raises(ParameterError):
                engine.weighted_product(public.nsquare, public.n, [1], [])


class TestLifecycleAndFallback:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ParameterError):
            CryptoEngine(workers=-1)
        with pytest.raises(ParameterError):
            CryptoEngine(chunk_size=0)

    def test_close_is_idempotent_and_context_manager(self):
        engine = CryptoEngine(workers=2)
        with engine:
            pass
        assert engine.closed
        engine.close()

    def test_closed_engine_still_computes_serially(self, keypair):
        public, private = keypair.public, keypair.private
        engine = CryptoEngine(workers=2, chunk_size=4)
        engine.close()
        cts = engine.encrypt_vector(public, [3, 4, 5], "after-close")
        assert [private.raw_decrypt(ct) for ct in cts] == [3, 4, 5]
        assert engine.parallel_batches == 0

    def test_pool_start_failure_degrades_to_serial(self, keypair, monkeypatch):
        import concurrent.futures

        def boom(*args, **kwargs):
            raise OSError("no processes in this sandbox")

        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", boom
        )
        public, private = keypair.public, keypair.private
        with CryptoEngine(workers=4, chunk_size=2) as engine:
            cts = engine.encrypt_vector(public, [7, 8, 9, 10], "fallback")
            assert engine.pool_broken
            assert engine.parallel_batches == 0
            assert engine.serial_batches >= 1
        assert [private.raw_decrypt(ct) for ct in cts] == [7, 8, 9, 10]

    def test_single_chunk_skips_the_pool(self, keypair):
        public = keypair.public
        with CryptoEngine(workers=4, chunk_size=DEFAULT_CHUNK_SIZE) as engine:
            engine.encrypt_vector(public, [1, 2, 3], "one-chunk")
            assert engine.parallel_batches == 0
            assert engine.serial_batches == 1


class TestSchemeIntegration:
    def test_paillier_scheme_routes_through_engine(self, keypair):
        public, private = keypair.public, keypair.private
        with CryptoEngine(workers=1, chunk_size=8) as engine:
            scheme = PaillierScheme(engine=engine)
            cts = scheme.encrypt_vector(public, [5, 6, 7], "scheme")
            assert [private.raw_decrypt(ct) for ct in cts] == [5, 6, 7]
            weights = [2, 3, 4]
            got = scheme.weighted_product(public, cts, weights)
            assert private.raw_decrypt(got) == 5 * 2 + 6 * 3 + 7 * 4

    def test_no_multiexp_scheme_matches_base_fold(self, keypair):
        public, private = keypair.public, keypair.private
        rng = DeterministicRandom("scheme-naive")
        cts = [public.encrypt_raw(i, rng) for i in range(8)]
        weights = [1, 0, 2, 5, 0, 1, 3, 4]
        fast = PaillierScheme().weighted_product(public, cts, weights)
        slow = PaillierScheme(use_multiexp=False).weighted_product(
            public, cts, weights
        )
        assert fast == slow
        assert private.raw_decrypt(fast) == sum(
            i * w for i, w in enumerate(weights)
        )


class TestThreadSafety:
    """Regression tests for the engine's internal lock.

    One engine instance is shared by every server worker thread, so its
    counters, fixed-base cache, and pool handle are all cross-thread
    state.  These tests hammer that state from several threads and check
    that no update is lost and no result is corrupted; before the lock
    was added they failed intermittently with dropped counter increments.
    """

    def _hammer(self, engine, public, threads, calls_per_thread):
        import threading

        errors = []
        results = {}

        def work(tid):
            try:
                for i in range(calls_per_thread):
                    plaintexts = [tid * 100 + i, tid, i]
                    cts = engine.encrypt_vector(
                        public, plaintexts, "thread-%d-%d" % (tid, i)
                    )
                    results[(tid, i)] = (plaintexts, cts)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        pool = [
            threading.Thread(target=work, args=(tid,))
            for tid in range(threads)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        return errors, results

    def test_shared_engine_counters_lose_no_updates(self, keypair):
        public, private = keypair.public, keypair.private
        threads, calls = 8, 25
        with CryptoEngine(workers=1, chunk_size=2, fixed_base=True) as engine:
            errors, results = self._hammer(engine, public, threads, calls)
            assert not errors
            # every call runs serially (workers=1) and bumps the counter
            # exactly once; a lost update here means the lock regressed
            assert engine.serial_batches == threads * calls
            assert engine.parallel_batches == 0
        assert len(results) == threads * calls
        for plaintexts, cts in results.values():
            assert [private.raw_decrypt(ct) for ct in cts] == plaintexts

    def test_concurrent_first_use_creates_one_pool(self, keypair):
        public, private = keypair.public, keypair.private
        threads, calls = 4, 2
        with CryptoEngine(workers=2, chunk_size=2) as engine:
            errors, results = self._hammer(engine, public, threads, calls)
            assert not errors
            assert (
                engine.parallel_batches + engine.serial_batches
                == threads * calls
            )
        for plaintexts, cts in results.values():
            assert [private.raw_decrypt(ct) for ct in cts] == plaintexts

    def test_concurrent_fixed_base_cache_is_consistent(self, keypair):
        import threading

        public = keypair.public
        with CryptoEngine(workers=1, fixed_base=True) as engine:
            seen = []

            def fetch():
                source = DeterministicRandom("fixed-base-race")
                seen.append(engine._fixed_base_generator(public, source))

            pool = [threading.Thread(target=fetch) for _ in range(8)]
            for t in pool:
                t.start()
            for t in pool:
                t.join()
            assert len(seen) == 8
            assert all(entry == seen[0] for entry in seen)
            assert len(engine._fixed_base_h) == 1


class TestAdaptiveChunkSize:
    def test_reference_key_size_keeps_default(self):
        from repro.crypto.engine import chunk_size_for

        assert chunk_size_for(512) == DEFAULT_CHUNK_SIZE

    def test_scales_inversely_with_key_size_and_clamps(self):
        from repro.crypto.engine import chunk_size_for

        assert chunk_size_for(1024) == DEFAULT_CHUNK_SIZE // 4
        assert chunk_size_for(256) == DEFAULT_CHUNK_SIZE * 4
        assert chunk_size_for(16) == 4096  # upper clamp
        assert chunk_size_for(1 << 20) == 16  # lower clamp
        with pytest.raises(ParameterError):
            chunk_size_for(0)

    def test_spans_cover_the_vector_exactly(self, keypair):
        # The adaptive schedule must partition any length without gaps
        # or overlap — every plaintext encrypted exactly once.
        from repro.crypto.engine import chunk_size_for

        public, private = keypair.public, keypair.private
        size = chunk_size_for(public.bits) + 3  # forces a ragged tail
        plaintexts = [m % public.n for m in range(size)]
        with CryptoEngine(workers=1) as engine:
            cts = engine.encrypt_vector(public, plaintexts, "adaptive-cover")
        assert len(cts) == size
        assert [private.raw_decrypt(ct) for ct in cts] == plaintexts

    def test_adaptive_schedule_is_deterministic(self, keypair):
        public = keypair.public
        plaintexts = list(range(30))
        with CryptoEngine(workers=1) as a, CryptoEngine(workers=2) as b:
            assert a.encrypt_vector(
                public, plaintexts, "adaptive-det"
            ) == b.encrypt_vector(public, plaintexts, "adaptive-det")


class TestCrtPrivateKeyPath:
    def test_crt_engine_is_byte_identical(self, keypair):
        public, private = keypair.public, keypair.private
        plaintexts = list(range(24))
        with CryptoEngine(workers=1, chunk_size=8) as baseline:
            expected = baseline.encrypt_vector(public, plaintexts, "crt-path")
        with CryptoEngine(
            workers=1, chunk_size=8, private_key=private
        ) as crt_engine:
            assert (
                crt_engine.encrypt_vector(public, plaintexts, "crt-path")
                == expected
            )

    def test_mismatched_private_key_falls_back(self, keypair):
        other = generate_keypair(KEY_BITS, "engine-other-key")
        public, private = keypair.public, keypair.private
        with CryptoEngine(workers=1, private_key=other.private) as engine:
            cts = engine.encrypt_vector(public, [1, 2, 3], "crt-mismatch")
        assert [private.raw_decrypt(ct) for ct in cts] == [1, 2, 3]

    def test_fixed_base_disables_crt_but_stays_correct(self, keypair):
        public, private = keypair.public, keypair.private
        with CryptoEngine(
            workers=1, fixed_base=True, private_key=private
        ) as engine:
            cts = engine.encrypt_vector(public, [4, 5], "crt-fixed-base")
        assert [private.raw_decrypt(ct) for ct in cts] == [4, 5]


class TestEngineRerandomizeVector:
    def test_preserves_plaintexts_and_changes_bytes(self, keypair):
        public, private = keypair.public, keypair.private
        cts = [public.encrypt_raw(m, "err-%d" % m) for m in (1, 2, 3)]
        with CryptoEngine(workers=1) as engine:
            fresh = engine.rerandomize_vector(public, cts, "err-seed")
        assert all(a != b for a, b in zip(fresh, cts))
        assert [private.raw_decrypt(c) for c in fresh] == [1, 2, 3]

    def test_pooled_obfuscators_are_used(self, keypair):
        from repro.crypto.paillier import RandomnessPool

        public, private = keypair.public, keypair.private
        pool = RandomnessPool(public, "engine-rrv-pool")
        pool.precompute(3)
        cts = [public.encrypt_raw(m, "errp-%d" % m) for m in (6, 7, 8)]
        with CryptoEngine(workers=1) as engine:
            fresh = engine.rerandomize_vector(public, cts, pool=pool)
        assert [private.raw_decrypt(c) for c in fresh] == [6, 7, 8]
        assert len(pool) == 0

    def test_crt_private_key_matches_public_path(self, keypair):
        public, private = keypair.public, keypair.private
        cts = [public.encrypt_raw(m, "errc-%d" % m) for m in (9, 10)]
        with CryptoEngine(workers=1) as public_engine:
            expected = public_engine.rerandomize_vector(public, cts, "errc")
        with CryptoEngine(workers=1, private_key=private) as crt_engine:
            assert crt_engine.rerandomize_vector(public, cts, "errc") == expected

    def test_rejects_non_paillier_key(self):
        with CryptoEngine(workers=1) as engine:
            with pytest.raises(ParameterError):
                engine.rerandomize_vector(object(), [1])

    def test_empty_vector(self, keypair):
        with CryptoEngine(workers=1) as engine:
            assert engine.rerandomize_vector(keypair.public, []) == ()


class TestPackedTaskCodec:
    def test_frames_roundtrip(self):
        from repro.crypto.engine import _pack_frames, _unpack_frames

        frames = [b"", b"x", b"frame-two", b"\x00" * 300]
        assert _unpack_frames(_pack_frames(*frames)) == frames

    def test_truncated_frames_rejected(self):
        from repro.crypto.engine import _pack_frames, _unpack_frames

        blob = _pack_frames(b"abc", b"def")
        with pytest.raises(ParameterError):
            _unpack_frames(blob[:-1])
        with pytest.raises(ParameterError):
            _unpack_frames(blob + b"\x00\x01")

    def test_unknown_key_blob_kind_rejected(self):
        from repro.crypto.engine import _context_from_blob

        with pytest.raises(ParameterError):
            _context_from_blob(b"\x7fgarbage")

    def test_key_context_cache_is_bounded_lru(self, keypair):
        from repro.crypto.engine import KeyContextCache, _encrypt_key_blob

        cache = KeyContextCache(capacity=2)
        blobs = [
            _encrypt_key_blob(keypair.public.n, None, keypair.public.bits, w)
            for w in (2, 3, 4)
        ]
        for blob in blobs:
            cache.get(blob)
        assert len(cache) == 2
        # oldest entry evicted; re-fetching rebuilds it
        assert cache.get(blobs[0]).public.n == keypair.public.n

    def test_cache_rejects_nonpositive_capacity(self):
        from repro.crypto.engine import KeyContextCache

        with pytest.raises(ParameterError):
            KeyContextCache(capacity=0)
