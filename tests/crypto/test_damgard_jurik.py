"""Tests for the Damgård–Jurik generalization of Paillier."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.damgard_jurik import (
    DamgardJurikPublicKey,
    DamgardJurikScheme,
    generate_dj_keypair,
)
from repro.crypto.paillier import generate_keypair
from repro.crypto.rng import DeterministicRandom
from repro.exceptions import DecryptionError, EncryptionError, KeyGenerationError


@pytest.fixture(scope="module", params=[1, 2, 3])
def dj(request):
    s = request.param
    scheme = DamgardJurikScheme(s)
    keypair = scheme.generate(128, "dj-fixture-%d" % s)
    return scheme, keypair


class TestKeyGeneration:
    def test_rejects_bad_s(self):
        with pytest.raises(KeyGenerationError):
            DamgardJurikScheme(0)
        with pytest.raises(KeyGenerationError):
            DamgardJurikPublicKey(35, 0)

    def test_rejects_tiny_keys(self):
        with pytest.raises(KeyGenerationError):
            generate_dj_keypair(8)

    def test_plaintext_space_grows_with_s(self):
        sizes = []
        for s in (1, 2, 3):
            keypair = generate_dj_keypair(128, s, "grow")
            sizes.append(keypair.public.n_to_s.bit_length())
        assert sizes[0] < sizes[1] < sizes[2]
        assert sizes[1] == pytest.approx(2 * sizes[0], abs=2)

    def test_private_key_validates_factors(self, dj):
        from repro.crypto.damgard_jurik import DamgardJurikPrivateKey

        _, keypair = dj
        with pytest.raises(KeyGenerationError):
            DamgardJurikPrivateKey(keypair.public, 3, 5)


class TestRoundtrip:
    def test_small_values(self, dj):
        scheme, keypair = dj
        for m in (0, 1, 2, 42, 9999):
            c = scheme.encrypt(keypair.public, m, DeterministicRandom(m))
            assert scheme.decrypt(keypair.private, c) == m

    def test_full_range_boundary(self, dj):
        scheme, keypair = dj
        top = keypair.public.n_to_s - 1
        c = scheme.encrypt(keypair.public, top, "top")
        assert scheme.decrypt(keypair.private, c) == top

    def test_beyond_paillier_range(self):
        """s=2 carries plaintexts that would not fit Paillier's Z_n."""
        scheme = DamgardJurikScheme(2)
        keypair = scheme.generate(128, "big")
        big = keypair.public.n + 12345  # > n: impossible at s=1
        c = scheme.encrypt(keypair.public, big, "r")
        assert scheme.decrypt(keypair.private, c) == big

    def test_out_of_range_rejected(self, dj):
        _, keypair = dj
        with pytest.raises(EncryptionError):
            keypair.public.raw_encrypt(keypair.public.n_to_s, 2)
        with pytest.raises(DecryptionError):
            from repro.crypto.damgard_jurik import DamgardJurikScheme as S

            keypair.private.raw_decrypt(keypair.public.modulus)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**200))
    def test_roundtrip_property(self, m):
        scheme = DamgardJurikScheme(2)
        keypair = scheme.generate(128, "prop")
        m %= keypair.public.n_to_s
        c = scheme.encrypt(keypair.public, m, DeterministicRandom(m))
        assert scheme.decrypt(keypair.private, c) == m


class TestHomomorphism:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**64), st.integers(0, 2**64), st.integers(0, 2**20))
    def test_identities(self, a, b, k):
        scheme = DamgardJurikScheme(2)
        keypair = scheme.generate(128, "hom")
        pk, sk = keypair
        ca = scheme.encrypt(pk, a, DeterministicRandom(a))
        cb = scheme.encrypt(pk, b, DeterministicRandom(b + 1))
        assert scheme.decrypt(sk, scheme.ciphertext_add(pk, ca, cb)) == (
            (a + b) % pk.n_to_s
        )
        assert scheme.decrypt(sk, scheme.ciphertext_scale(pk, ca, k)) == (
            a * k % pk.n_to_s
        )

    def test_identity_and_rerandomize(self, dj):
        scheme, keypair = dj
        pk, sk = keypair
        c = scheme.encrypt(pk, 77, "r")
        assert scheme.decrypt(sk, scheme.ciphertext_add(pk, c, scheme.identity(pk))) == 77
        c2 = scheme.rerandomize(pk, c, "r2")
        assert c2 != c
        assert scheme.decrypt(sk, c2) == 77


class TestPaillierCompatibility:
    def test_s1_matches_paillier_semantics(self):
        """s = 1 is Paillier: same modulus structure, same algebra."""
        dj_keypair = generate_dj_keypair(128, 1, "compat")
        p_keypair = generate_keypair(128, "compat")
        # Same deterministic seed ⇒ same primes ⇒ same modulus.
        assert dj_keypair.public.n == p_keypair.public.n
        # Cross-decryption: a Paillier ciphertext decrypts under DJ(s=1).
        ct = p_keypair.public.encrypt_raw(4242, DeterministicRandom("x"))
        assert dj_keypair.private.raw_decrypt(ct) == 4242

    def test_ciphertext_sizes(self):
        for s in (1, 2, 3):
            scheme = DamgardJurikScheme(s)
            keypair = scheme.generate(128, "size-%d" % s)
            assert scheme.ciphertext_size_bytes(keypair.public) == (s + 1) * 16


class TestProtocolIntegration:
    def test_selected_sum_over_dj(self):
        """The whole protocol stack runs over DJ unchanged."""
        from repro.datastore import WorkloadGenerator
        from repro.spfe.context import ExecutionContext
        from repro.spfe.selected_sum import SelectedSumProtocol

        generator = WorkloadGenerator("dj-proto")
        database = generator.database(15, value_bits=16)
        selection = generator.random_selection(15, 5)
        ctx = ExecutionContext(
            scheme=DamgardJurikScheme(2), key_bits=128, mode="measured", rng="dj"
        )
        result = SelectedSumProtocol(ctx).run(database, selection)
        assert result.value == database.select_sum(selection)
        assert result.scheme == "damgard-jurik"
