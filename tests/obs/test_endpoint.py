"""Unit tests for the HTTP stats endpoint (`repro.obs.http`)."""

import json

import pytest

from repro.exceptions import ParameterError
from repro.obs.check import scrape, validate_exposition
from repro.obs.http import StatsEndpoint
from repro.obs.registry import MetricsRegistry


@pytest.fixture()
def registry():
    registry = MetricsRegistry()
    registry.counter("demo_total", "Demo counter.").inc(5)
    return registry


def url(endpoint, path):
    host, port = endpoint.address
    return "http://%s:%d%s" % (host, port, path)


class TestRoutes:
    def test_metrics_route_serves_valid_exposition(self, registry):
        with StatsEndpoint(registry) as endpoint:
            status, body = scrape(url(endpoint, "/metrics"))
        assert status == 200
        assert "demo_total 5" in body
        assert validate_exposition(body) == []

    def test_metrics_json_route_parses(self, registry):
        with StatsEndpoint(registry) as endpoint:
            status, body = scrape(url(endpoint, "/metrics.json"))
        assert status == 200
        parsed = json.loads(body)
        (entry,) = parsed["metrics"]
        assert entry["name"] == "demo_total"
        assert entry["value"] == 5

    def test_query_strings_are_ignored(self, registry):
        with StatsEndpoint(registry) as endpoint:
            status, _ = scrape(url(endpoint, "/metrics?format=ignored"))
        assert status == 200

    def test_unknown_route_is_404(self, registry):
        with StatsEndpoint(registry) as endpoint:
            status, body = scrape(url(endpoint, "/nope"))
        assert status == 404
        assert "/metrics" in body  # the 404 names the valid routes

    def test_scrapes_see_live_values(self, registry):
        with StatsEndpoint(registry) as endpoint:
            _, before = scrape(url(endpoint, "/metrics"))
            registry.counter("demo_total").inc(2)
            _, after = scrape(url(endpoint, "/metrics"))
        assert "demo_total 5" in before
        assert "demo_total 7" in after


class TestHealthz:
    def test_default_health_is_ok_200(self, registry):
        with StatsEndpoint(registry) as endpoint:
            status, body = scrape(url(endpoint, "/healthz"))
        assert status == 200
        assert json.loads(body) == {"status": "ok"}

    def test_unhealthy_status_answers_503(self, registry):
        state = {"status": "ok", "in_flight": 0}
        with StatsEndpoint(registry, health=lambda: dict(state)) as endpoint:
            ok_status, ok_body = scrape(url(endpoint, "/healthz"))
            state["status"] = "draining"
            bad_status, bad_body = scrape(url(endpoint, "/healthz"))
        assert ok_status == 200
        assert json.loads(ok_body)["in_flight"] == 0
        assert bad_status == 503
        assert json.loads(bad_body)["status"] == "draining"


class TestLifecycle:
    def test_port_requires_start(self, registry):
        endpoint = StatsEndpoint(registry)
        with pytest.raises(ParameterError):
            endpoint.port
        with pytest.raises(ParameterError):
            endpoint.address

    def test_negative_port_rejected(self, registry):
        with pytest.raises(ParameterError):
            StatsEndpoint(registry, port=-1)

    def test_double_start_rejected(self, registry):
        endpoint = StatsEndpoint(registry).start()
        try:
            with pytest.raises(ParameterError):
                endpoint.start()
        finally:
            endpoint.close()

    def test_close_is_idempotent_and_releases_the_socket(self, registry):
        endpoint = StatsEndpoint(registry).start()
        host, port = endpoint.address
        endpoint.close()
        endpoint.close()
        with pytest.raises(OSError):
            scrape("http://%s:%d/metrics" % (host, port), timeout=1.0)
