"""Unit tests for phase tracing (`repro.obs.tracing`)."""

import pytest

from repro.exceptions import ParameterError
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import PHASE_FIELDS, PHASE_HISTOGRAM_NAME, Tracer


class TestRecording:
    def test_record_accumulates_totals_and_counts(self):
        tracer = Tracer()
        tracer.record("encrypt", 1.5)
        tracer.record("encrypt", 0.5)
        tracer.record("fold", 2.0)
        assert tracer.totals() == {"encrypt": 2.0, "fold": 2.0}
        assert tracer.counts() == {"encrypt": 2, "fold": 1}
        assert tracer.total("encrypt") == 2.0
        assert tracer.total("never-seen") == 0.0

    def test_negative_duration_rejected(self):
        tracer = Tracer()
        with pytest.raises(ParameterError):
            tracer.record("encrypt", -0.001)
        assert tracer.totals() == {}

    def test_span_measures_wall_clock(self):
        tracer = Tracer()
        with tracer.span("fold") as handle:
            sum(range(1000))
        assert handle.seconds >= 0.0
        assert tracer.counts() == {"fold": 1}
        assert tracer.total("fold") == handle.seconds

    def test_span_ring_is_bounded_but_totals_are_not(self):
        tracer = Tracer(keep_spans=4)
        for index in range(10):
            tracer.record("encrypt", float(index))
        spans = tracer.spans()
        assert len(spans) == 4
        # oldest-first ring of the most recent entries
        assert [span.seconds for span in spans] == [6.0, 7.0, 8.0, 9.0]
        assert tracer.counts() == {"encrypt": 10}
        assert tracer.total("encrypt") == sum(range(10))

    def test_negative_keep_spans_rejected(self):
        with pytest.raises(ParameterError):
            Tracer(keep_spans=-1)


class TestBreakdown:
    def test_canonical_phases_map_to_breakdown_fields(self):
        tracer = Tracer()
        tracer.record("encrypt", 1.0)
        tracer.record("fold", 2.0)
        tracer.record("communication", 3.0)
        tracer.record("decrypt", 4.0)
        tracer.record("offline", 5.0)
        tracer.record("combine", 6.0)
        breakdown = tracer.breakdown()
        assert breakdown.client_encrypt_s == 1.0
        assert breakdown.server_compute_s == 2.0
        assert breakdown.communication_s == 3.0
        assert breakdown.client_decrypt_s == 4.0
        assert breakdown.offline_precompute_s == 5.0
        assert breakdown.combine_s == 6.0

    def test_aliases_fold_into_one_field(self):
        tracer = Tracer()
        tracer.record("fold", 1.0)
        tracer.record("server_compute", 2.0)
        assert tracer.breakdown().server_compute_s == 3.0
        assert PHASE_FIELDS["fold"] == PHASE_FIELDS["server_compute"]

    def test_unknown_phases_stay_in_totals_only(self):
        tracer = Tracer()
        tracer.record("resume", 9.0)
        assert tracer.total("resume") == 9.0
        breakdown = tracer.breakdown()
        assert breakdown.server_compute_s == 0.0
        assert breakdown.client_encrypt_s == 0.0


class TestRegistryAttachment:
    def test_spans_flow_into_phase_histogram(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry=registry)
        tracer.record("fold", 0.02)
        tracer.record("fold", 0.03)
        tracer.record("encrypt", 0.5)
        fold = registry.histogram(
            PHASE_HISTOGRAM_NAME, labels={"phase": "fold"}
        )
        encrypt = registry.histogram(
            PHASE_HISTOGRAM_NAME, labels={"phase": "encrypt"}
        )
        assert fold.count == 2
        assert fold.sum_value == pytest.approx(0.05)
        assert encrypt.count == 1

    def test_detached_tracer_touches_no_registry(self):
        tracer = Tracer()
        tracer.record("fold", 1.0)
        assert tracer.registry is None
