"""Unit tests for the observability layer (:mod:`repro.obs`)."""
