"""Unit tests for exposition rendering (`repro.obs.exposition`)."""

import json

from repro.obs.check import validate_exposition
from repro.obs.exposition import (
    JSON_CONTENT_TYPE,
    PROMETHEUS_CONTENT_TYPE,
    render_json,
    render_json_text,
    render_prometheus,
)
from repro.obs.registry import MetricsRegistry


def populated_registry():
    registry = MetricsRegistry()
    registry.counter("events_total", "Events seen.").inc(7)
    registry.gauge("queue_depth", "Items waiting.").set(3)
    histogram = registry.histogram(
        "latency_seconds", "Request latency.", buckets=(0.1, 0.5)
    )
    histogram.observe(0.05)
    histogram.observe(0.3)
    histogram.observe(2.0)
    return registry


class TestPrometheusText:
    def test_ends_with_newline_and_validates(self):
        text = render_prometheus(populated_registry())
        assert text.endswith("\n")
        assert validate_exposition(text) == []

    def test_empty_registry_renders_a_bare_newline(self):
        assert render_prometheus(MetricsRegistry()) == "\n"

    def test_headers_appear_once_per_name(self):
        registry = MetricsRegistry()
        registry.counter("hits_total", "Hits.", labels={"code": "200"}).inc()
        registry.counter("hits_total", "Hits.", labels={"code": "500"}).inc()
        text = render_prometheus(registry)
        assert text.count("# TYPE hits_total counter") == 1
        assert text.count("# HELP hits_total") == 1
        assert 'hits_total{code="200"} 1' in text
        assert 'hits_total{code="500"} 1' in text

    def test_histogram_expands_to_cumulative_buckets(self):
        text = render_prometheus(populated_registry())
        assert 'latency_seconds_bucket{le="0.1"} 1' in text
        assert 'latency_seconds_bucket{le="0.5"} 2' in text
        assert 'latency_seconds_bucket{le="+Inf"} 3' in text
        assert "latency_seconds_count 3" in text
        assert "latency_seconds_sum" in text
        assert "# TYPE latency_seconds histogram" in text

    def test_integral_values_render_without_decimal_point(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(5.0)
        assert "g 5\n" in render_prometheus(registry)

    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        registry.counter(
            "c_total", labels={"path": 'a\\b"c\nd'}
        ).inc()
        text = render_prometheus(registry)
        assert 'path="a\\\\b\\"c\\nd"' in text
        # escaping must keep the page parseable line by line
        assert validate_exposition(text) == []

    def test_help_text_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "line one\nback\\slash").inc()
        text = render_prometheus(registry)
        assert "# HELP c_total line one\\nback\\\\slash" in text
        assert validate_exposition(text) == []

    def test_content_types_are_the_documented_constants(self):
        assert PROMETHEUS_CONTENT_TYPE.startswith("text/plain")
        assert "0.0.4" in PROMETHEUS_CONTENT_TYPE
        assert JSON_CONTENT_TYPE.startswith("application/json")


class TestJson:
    def test_round_trip_recovers_every_value(self):
        registry = populated_registry()
        parsed = json.loads(render_json_text(registry))
        by_name = {entry["name"]: entry for entry in parsed["metrics"]}
        assert by_name["events_total"]["type"] == "counter"
        assert by_name["events_total"]["value"] == 7
        assert by_name["queue_depth"]["type"] == "gauge"
        assert by_name["queue_depth"]["value"] == 3
        histogram = by_name["latency_seconds"]
        assert histogram["type"] == "histogram"
        assert histogram["count"] == 3
        assert histogram["sum"] == 0.05 + 0.3 + 2.0
        assert histogram["buckets"] == [
            {"le": 0.1, "count": 1},
            {"le": 0.5, "count": 2},
            {"le": "+Inf", "count": 3},
        ]

    def test_labels_round_trip_as_mappings(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labels={"mode": "parallel"}).inc(2)
        document = render_json(registry)
        (entry,) = document["metrics"]
        assert entry["labels"] == {"mode": "parallel"}
        assert entry["value"] == 2

    def test_text_form_is_stable_and_newline_terminated(self):
        registry = populated_registry()
        first = render_json_text(registry)
        second = render_json_text(registry)
        assert first == second
        assert first.endswith("\n")


class TestValidator:
    def test_flags_malformed_sample(self):
        problems = validate_exposition("this is {not a sample\n")
        assert any("malformed" in problem for problem in problems)

    def test_flags_missing_trailing_newline(self):
        problems = validate_exposition("# TYPE a counter\na 1")
        assert any("newline" in problem for problem in problems)

    def test_flags_empty_body_and_no_samples(self):
        assert validate_exposition("") == ["empty exposition body"]
        problems = validate_exposition("# TYPE a counter\n")
        assert any("no samples" in problem for problem in problems)

    def test_flags_sample_without_type_declaration(self):
        page = "# TYPE a counter\na 1\nmystery 2\n"
        problems = validate_exposition(page)
        assert any("no # TYPE" in problem for problem in problems)
