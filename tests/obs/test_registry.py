"""Unit tests for metric instruments (`repro.obs.registry`)."""

import threading

import pytest

from repro.exceptions import ParameterError
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_accumulates_and_returns_total(self):
        counter = Counter("c_total")
        assert counter.inc() == 1
        assert counter.inc(41) == 42
        assert counter.value == 42

    def test_zero_increment_allowed(self):
        counter = Counter("c_total")
        assert counter.inc(0) == 0

    def test_negative_increment_rejected(self):
        counter = Counter("c_total")
        with pytest.raises(ParameterError):
            counter.inc(-1)
        assert counter.value == 0

    def test_invalid_name_rejected(self):
        with pytest.raises(ParameterError):
            Counter("0starts_with_digit")
        with pytest.raises(ParameterError):
            Counter("has space")

    def test_concurrent_hammer_loses_nothing(self):
        """8 threads x 1000 increments: the lock keeps the total exact."""
        counter = Counter("c_total")
        threads = 8
        per_thread = 1000

        def hammer():
            for _ in range(per_thread):
                counter.inc()

        pool = [threading.Thread(target=hammer) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert counter.value == threads * per_thread


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(5)
        assert gauge.value == 5.0
        assert gauge.inc(2.5) == 7.5
        assert gauge.dec(10) == -2.5  # gauges may go negative

    def test_snapshot_carries_value(self):
        gauge = Gauge("g", "help here")
        gauge.set(3)
        snap = gauge.snapshot()
        assert snap.kind == "gauge"
        assert snap.value == 3.0
        assert snap.help_text == "help here"


class TestHistogram:
    def test_bucket_edges_are_inclusive_upper_bounds(self):
        """value == bound lands in that bucket; just above spills over."""
        histogram = Histogram("h", buckets=(0.1, 0.5, 1.0))
        histogram.observe(0.1)  # exactly on the first bound
        histogram.observe(0.10000001)  # just above -> second bucket
        histogram.observe(1.0)  # exactly on the last finite bound
        histogram.observe(2.0)  # beyond every bound -> +Inf tail
        snap = histogram.snapshot()
        # cumulative: le=0.1 -> 1, le=0.5 -> 2, le=1.0 -> 3, +Inf -> 4
        assert snap.bucket_counts == (1, 2, 3, 4)
        assert snap.count == 4
        assert snap.sum_value == pytest.approx(0.1 + 0.10000001 + 1.0 + 2.0)

    def test_tail_never_loses_an_observation(self):
        histogram = Histogram("h", buckets=(1.0,))
        histogram.observe(10.0)
        histogram.observe(1e9)
        snap = histogram.snapshot()
        assert snap.bucket_counts == (0, 2)
        assert snap.count == 2

    def test_bad_buckets_rejected(self):
        with pytest.raises(ParameterError):
            Histogram("h", buckets=())
        with pytest.raises(ParameterError):
            Histogram("h", buckets=(1.0, 1.0))  # not strictly increasing
        with pytest.raises(ParameterError):
            Histogram("h", buckets=(1.0, 0.5))
        with pytest.raises(ParameterError):
            Histogram("h", buckets=(1.0, float("inf")))  # +Inf is implicit
        with pytest.raises(ParameterError):
            Histogram("h", buckets=(float("nan"),))

    def test_concurrent_observes_keep_count_and_sum_consistent(self):
        histogram = Histogram("h", buckets=DEFAULT_LATENCY_BUCKETS)
        threads = 4
        per_thread = 500

        def hammer():
            for _ in range(per_thread):
                histogram.observe(0.01)

        pool = [threading.Thread(target=hammer) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        total = threads * per_thread
        snap = histogram.snapshot()
        assert snap.count == total
        assert snap.bucket_counts[-1] == total  # +Inf is cumulative-total
        assert snap.sum_value == pytest.approx(total * 0.01)


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("requests_total")
        second = registry.counter("requests_total")
        assert first is second
        first.inc()
        assert second.value == 1

    def test_label_variants_are_distinct_instruments(self):
        registry = MetricsRegistry()
        ok = registry.counter("requests_total", labels={"code": "200"})
        bad = registry.counter("requests_total", labels={"code": "500"})
        assert ok is not bad
        ok.inc(3)
        assert bad.value == 0

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        first = registry.counter("c", labels={"a": "1", "b": "2"})
        second = registry.counter("c", labels={"b": "2", "a": "1"})
        assert first is second

    def test_label_values_coerced_to_strings(self):
        registry = MetricsRegistry()
        first = registry.counter("c", labels={"code": 200})
        second = registry.counter("c", labels={"code": "200"})
        assert first is second

    def test_invalid_label_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ParameterError):
            registry.counter("c", labels={"0bad": "x"})

    def test_kind_collision_rejected_across_label_sets(self):
        registry = MetricsRegistry()
        registry.counter("thing", labels={"a": "1"})
        with pytest.raises(ParameterError):
            registry.gauge("thing")  # same name, different kind
        with pytest.raises(ParameterError):
            registry.histogram("thing", labels={"a": "2"})

    def test_histogram_bucket_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("latency", buckets=(0.1, 1.0))
        with pytest.raises(ParameterError):
            registry.histogram("latency", buckets=(0.5, 1.0))
        # identical buckets are fine (get-or-create)
        again = registry.histogram("latency", buckets=(0.1, 1.0))
        assert again.bucket_bounds == (0.1, 1.0)

    def test_collect_is_sorted_and_complete(self):
        registry = MetricsRegistry()
        registry.gauge("zebra")
        registry.counter("alpha_total")
        registry.histogram("mid_seconds", buckets=(1.0,))
        names = [snap.name for snap in registry.collect()]
        assert names == sorted(names)
        assert set(names) == {"zebra", "alpha_total", "mid_seconds"}

    def test_concurrent_get_or_create_yields_one_instrument(self):
        registry = MetricsRegistry()
        found = []

        def create():
            found.append(registry.counter("shared_total"))

        pool = [threading.Thread(target=create) for _ in range(8)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert len({id(counter) for counter in found}) == 1
