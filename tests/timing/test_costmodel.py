"""Tests for :mod:`repro.timing.costmodel`."""

import pytest

from repro.exceptions import ParameterError
from repro.timing.costmodel import (
    HardwareProfile,
    Op,
    calibrate_profile,
    profiles,
)


class TestHardwareProfile:
    def test_all_ops_have_costs(self):
        profile = profiles.pentium3_2ghz
        for op in Op:
            assert profile.cost(op) > 0

    def test_missing_costs_rejected(self):
        with pytest.raises(ParameterError):
            HardwareProfile(name="bad", base_costs={Op.ENCRYPT: 1.0})

    def test_scale_factors_validated(self):
        with pytest.raises(ParameterError):
            profiles.pentium3_2ghz.scaled(0)

    def test_paper_fit_encryption(self):
        # 100,000 encryptions at 512 bits on the P-III: ~18 minutes
        # (the dominant share of the paper's ~20-minute total).
        total = 100_000 * profiles.pentium3_2ghz.cost(Op.ENCRYPT, 512)
        assert 15 * 60 < total < 20 * 60

    def test_server_step_much_cheaper_than_encryption(self):
        profile = profiles.pentium3_2ghz
        ratio = profile.cost(Op.ENCRYPT) / profile.cost(Op.WEIGHTED_STEP)
        # A 512-bit exponent vs a 32-bit exponent: roughly 16x.
        assert 8 < ratio < 32

    def test_decrypt_comparable_to_encrypt(self):
        profile = profiles.pentium3_2ghz
        ratio = profile.cost(Op.DECRYPT) / profile.cost(Op.ENCRYPT)
        assert 0.5 < ratio < 2.0

    def test_machine_scaling(self):
        fast = profiles.pentium3_2ghz
        assert profiles.pentium_1ghz.cost(Op.ENCRYPT) == pytest.approx(
            2 * fast.cost(Op.ENCRYPT)
        )
        assert profiles.ultrasparc_500mhz.cost(Op.ENCRYPT) == pytest.approx(
            4 * fast.cost(Op.ENCRYPT)
        )

    def test_java_factor(self):
        profile = profiles.pentium3_2ghz
        java = profile.java()
        assert java.cost(Op.ENCRYPT) == pytest.approx(5 * profile.cost(Op.ENCRYPT))
        assert java.name.endswith("-java")

    def test_key_size_scaling_laws(self):
        profile = profiles.pentium3_2ghz
        # Encryption is cubic in key size...
        assert profile.cost(Op.ENCRYPT, 1024) == pytest.approx(
            8 * profile.cost(Op.ENCRYPT, 512)
        )
        # ... the server's fixed-exponent step quadratic ...
        assert profile.cost(Op.WEIGHTED_STEP, 1024) == pytest.approx(
            4 * profile.cost(Op.WEIGHTED_STEP, 512)
        )
        # ... and bookkeeping size-independent.
        assert profile.cost(Op.PLAIN_ADD, 1024) == profile.cost(Op.PLAIN_ADD, 512)

    def test_invalid_key_bits(self):
        with pytest.raises(ParameterError):
            profiles.pentium3_2ghz.cost(Op.ENCRYPT, 0)

    def test_preset_lookup(self):
        assert profiles.by_name("pentium3-2ghz") is profiles.pentium3_2ghz
        with pytest.raises(ParameterError):
            profiles.by_name("cray-1")


class TestCalibration:
    def test_calibrated_profile_is_usable(self):
        profile = calibrate_profile(key_bits=64, iterations=3)
        for op in Op:
            assert profile.cost(op) > 0

    def test_calibrated_ratios_sane(self):
        # The model's structural claim: the server's 32-bit-exponent step
        # is much cheaper than a full encryption.  Real measurements of
        # the pure-Python cryptosystem should agree on the direction.
        profile = calibrate_profile(key_bits=256, iterations=5)
        assert profile.cost(Op.WEIGHTED_STEP) < profile.cost(Op.ENCRYPT)
        assert profile.cost(Op.CIPHER_ADD) < profile.cost(Op.WEIGHTED_STEP)

    def test_rejects_zero_iterations(self):
        from repro.exceptions import CalibrationError

        with pytest.raises(CalibrationError):
            calibrate_profile(iterations=0)
