"""Tests for :mod:`repro.timing.clock` and :mod:`repro.timing.report`."""

import time

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import ParameterError
from repro.timing.clock import PipelineSchedule, Stopwatch, VirtualClock
from repro.timing.report import TimingBreakdown, seconds_to_minutes


class TestVirtualClock:
    def test_advance(self):
        clock = VirtualClock()
        assert clock.advance(1.5) == 1.5
        assert clock.advance(0.5) == 2.0
        assert clock.now == 2.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ParameterError):
            VirtualClock().advance(-1)

    def test_wait_until_only_moves_forward(self):
        clock = VirtualClock(10.0)
        clock.wait_until(5.0)
        assert clock.now == 10.0
        clock.wait_until(12.0)
        assert clock.now == 12.0


class TestStopwatch:
    def test_measures_elapsed(self):
        sw = Stopwatch()
        with sw:
            time.sleep(0.01)
        assert sw.elapsed >= 0.009

    def test_accumulates(self):
        sw = Stopwatch()
        with sw:
            time.sleep(0.005)
        first = sw.elapsed
        with sw:
            time.sleep(0.005)
        assert sw.elapsed > first


class TestPipelineSchedule:
    def test_rejects_mismatched_stages(self):
        with pytest.raises(ParameterError):
            PipelineSchedule([1.0], [1.0, 2.0], [1.0])

    def test_rejects_negative_durations(self):
        with pytest.raises(ParameterError):
            PipelineSchedule([-1.0], [1.0], [1.0])

    def test_empty_pipeline(self):
        assert PipelineSchedule([], [], []).makespan() == 0.0

    def test_single_batch_is_sequential(self):
        schedule = PipelineSchedule([2.0], [1.0], [3.0])
        assert schedule.makespan() == pytest.approx(6.0)

    def test_dominant_stage_bounds_makespan(self):
        # 10 batches: client 1.0 each (dominant), link/server 0.1 each.
        schedule = PipelineSchedule([1.0] * 10, [0.1] * 10, [0.1] * 10)
        makespan = schedule.makespan()
        # Dominant stage total + fill/drain of the other two stages.
        assert makespan == pytest.approx(10.0 + 0.1 + 0.1)

    def test_makespan_never_below_any_stage_total(self):
        schedule = PipelineSchedule([0.5] * 8, [0.7] * 8, [0.3] * 8)
        assert schedule.makespan() >= max(schedule.stage_totals())

    def test_makespan_never_above_sequential(self):
        schedule = PipelineSchedule([0.5] * 8, [0.7] * 8, [0.3] * 8)
        assert schedule.makespan() <= sum(schedule.stage_totals())

    def test_completion_times_monotone(self):
        schedule = PipelineSchedule([1, 2, 1], [0.5, 0.1, 0.9], [1, 1, 1])
        times = schedule.completion_times()
        assert times == sorted(times)

    @given(
        st.lists(st.floats(0, 10), min_size=1, max_size=20),
        st.data(),
    )
    def test_bounds_property(self, client, data):
        k = len(client)
        link = data.draw(st.lists(st.floats(0, 10), min_size=k, max_size=k))
        server = data.draw(st.lists(st.floats(0, 10), min_size=k, max_size=k))
        schedule = PipelineSchedule(client, link, server)
        makespan = schedule.makespan()
        totals = schedule.stage_totals()
        assert makespan >= max(totals) - 1e-9
        assert makespan <= sum(totals) + 1e-9


class TestTimingBreakdown:
    def test_totals(self):
        b = TimingBreakdown(
            client_encrypt_s=10,
            server_compute_s=5,
            communication_s=3,
            client_decrypt_s=1,
            offline_precompute_s=100,
            combine_s=2,
        )
        assert b.total_online_s() == 21
        assert b.total_s() == 121

    def test_minutes_view(self):
        b = TimingBreakdown(client_encrypt_s=120)
        assert b.as_minutes()["client_encrypt"] == 2.0

    def test_add(self):
        a = TimingBreakdown(client_encrypt_s=1, combine_s=2)
        b = TimingBreakdown(client_encrypt_s=3, server_compute_s=4)
        total = a.add(b)
        assert total.client_encrypt_s == 4
        assert total.server_compute_s == 4
        assert total.combine_s == 2

    def test_seconds_to_minutes(self):
        assert seconds_to_minutes(90) == 1.5
