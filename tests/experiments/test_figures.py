"""Tests that the figure runners reproduce the paper's shapes.

These run reduced sweeps (small n) for speed; the benches run the full
paper-scale sweeps.  The assertions here encode the *qualitative claims*
of each figure — who dominates, what is linear, how large each
optimization's gain is — which is exactly what a reproduction must get
right.
"""

import pytest

from repro.experiments import figures


SIZES = (2_000, 4_000)


class TestFigure2:
    @pytest.fixture(scope="class")
    def series(self):
        return figures.figure2(sizes=SIZES)

    def test_linear_in_n(self, series):
        first, last = series.points[0], series.points[-1]
        for column in ("client_encrypt", "server_compute", "communication"):
            assert last.get(column) == pytest.approx(2 * first.get(column), rel=0.05)

    def test_encryption_dominates(self, series):
        for point in series.points:
            assert point.get("client_encrypt") > 5 * point.get("server_compute")
            assert point.get("server_compute") > point.get("communication")

    def test_decryption_constant(self, series):
        assert series.points[0].get("client_decrypt") == pytest.approx(
            series.points[-1].get("client_decrypt")
        )

    def test_paper_total_at_100k(self):
        """The headline number: ~20 minutes at n = 100,000."""
        series = figures.figure2(sizes=(100_000,))
        point = series.final()
        total = sum(point.get(c) for c in series.columns)
        assert 18 < total < 23


class TestFigure3:
    @pytest.fixture(scope="class")
    def series(self):
        return figures.figure3(sizes=SIZES)

    def test_computation_still_prevails(self, series):
        for point in series.points:
            assert point.get("client_encrypt") > point.get("communication")

    def test_communication_substantial(self, series):
        """Over the modem, communication overtakes the server time."""
        for point in series.points:
            assert point.get("communication") > point.get("server_compute")

    def test_slower_than_short_distance(self):
        short = figures.figure2(sizes=(2_000,)).final()
        long_ = figures.figure3(sizes=(2_000,)).final()
        assert long_.get("client_encrypt") > short.get("client_encrypt")
        assert long_.get("communication") > 10 * short.get("communication")


class TestFigure4:
    def test_paper_reduction(self):
        series = figures.figure4(sizes=SIZES)
        for point in series.points:
            assert 7 < point.get("reduction_pct") < 13
            assert point.get("with_batching") < point.get("without_batching")


class TestFigure5:
    def test_server_dominant_online(self):
        series = figures.figure5(sizes=SIZES)
        for point in series.points:
            assert point.get("server_compute") > point.get("client_encrypt")
            assert point.get("server_compute") > point.get("communication")

    def test_online_reduction_vs_figure2(self):
        """The paper reports ~82% online reduction."""
        fig2 = figures.figure2(sizes=(4_000,)).final()
        fig5 = figures.figure5(sizes=(4_000,)).final()
        total2 = sum(fig2.get(c) for c in figures.COMPONENT_COLUMNS)
        total5 = sum(fig5.get(c) for c in figures.COMPONENT_COLUMNS)
        reduction = 1 - total5 / total2
        assert 0.75 < reduction < 0.92


class TestFigure6:
    def test_communication_dominates(self):
        series = figures.figure6(sizes=SIZES)
        for point in series.points:
            assert point.get("communication") > point.get("server_compute")
            assert point.get("communication") > point.get("client_encrypt")


class TestFigure7:
    def test_paper_reduction(self):
        series = figures.figure7(sizes=SIZES)
        for point in series.points:
            assert 90 < point.get("reduction_pct") < 96


class TestFigure9:
    def test_paper_speedup(self):
        series = figures.figure9(sizes=SIZES)
        for point in series.points:
            assert 2.8 < point.get("speedup") < 3.05

    def test_java_slower_than_cpp_figures(self):
        java = figures.figure9(sizes=(2_000,)).final()
        cpp = figures.figure4(sizes=(2_000,)).final()
        assert java.get("without_secret_sharing") > 4 * cpp.get("without_batching")


class TestTextExperiments:
    def test_language_factor_is_five(self):
        series = figures.text_language_factor(sizes=(2_000,))
        assert series.final().get("compute_ratio") == pytest.approx(5.0, rel=0.01)

    def test_yao_baseline_comparison(self):
        series = figures.text_yao_baseline(sizes=(8,), value_bits=8)
        point = series.final()
        # Fairplay's modelled 15-min-at-100 scales to 1.2 min at n=8.
        assert point.get("fairplay_model") == pytest.approx(1.2)
        # The homomorphic protocol is orders of magnitude faster there.
        assert point.get("homomorphic_model") < point.get("fairplay_model") / 100


class TestAblations:
    def test_batch_size_sweep(self):
        series = figures.ablation_batch_size(batch_sizes=(1, 100, 2_000), n=2_000)
        makespans = series.column("makespan")
        assert all(m > 0 for m in makespans)
        # The paper's batch=100 beats no-op batching (whole db as one batch).
        assert series.at(100).get("makespan") <= series.at(2_000).get("makespan")

    def test_key_size_sweep(self):
        series = figures.ablation_key_size(key_sizes=(256, 512, 1024), n=2_000)
        encrypt = series.column("client_encrypt")
        assert encrypt[1] == pytest.approx(8 * encrypt[0], rel=0.01)  # cubic
        comm = series.column("communication")
        assert comm[2] > comm[0]  # bigger ciphertexts

    def test_client_sweep(self):
        series = figures.ablation_clients(client_counts=(2, 4), n=2_000)
        assert series.at(4).get("speedup") > series.at(2).get("speedup")
        assert series.at(2).get("speedup") == pytest.approx(2.0, rel=0.1)

    def test_link_sweep(self):
        series = figures.ablation_link(n=2_000)
        comm = series.column("communication")
        assert comm[0] < comm[1] < comm[2]  # cluster < wireless < modem

    def test_tradeoff_sweep(self):
        series = figures.ablation_tradeoff(superset_factors=(1.0, 10.0), n=2_000)
        assert series.at(1.0).get("makespan") < series.at(10.0).get("makespan")
        assert series.at(1.0).get("anonymity_ratio") == 1.0
        assert series.at(10.0).get("anonymity_ratio") == pytest.approx(0.1)


class TestInfrastructure:
    def test_default_sizes_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_QUICK", raising=False)
        assert len(figures.default_sizes()) == 10
        monkeypatch.setenv("REPRO_QUICK", "1")
        assert figures.default_sizes() == figures.QUICK_SIZES

    def test_run_paper_figures(self):
        results = figures.run_paper_figures(sizes=(1_000,))
        assert set(results) == {
            "figure2", "figure3", "figure4", "figure5",
            "figure6", "figure7", "figure9",
        }
        for series in results.values():
            assert series.points
