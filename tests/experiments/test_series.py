"""Tests for experiment series and table rendering."""

import os

import pytest

from repro.exceptions import ParameterError
from repro.experiments.series import ExperimentSeries, SeriesPoint
from repro.experiments.tables import render_chart, render_table, write_result_file


@pytest.fixture()
def series():
    s = ExperimentSeries(
        experiment_id="figX",
        title="A test figure",
        x_label="n",
        unit="min",
        columns=["alpha", "beta"],
    )
    s.add(10, alpha=1.0, beta=0.5)
    s.add(20, alpha=2.0, beta=1.0)
    return s


class TestSeries:
    def test_columns(self, series):
        assert series.column("alpha") == [1.0, 2.0]
        assert series.xs() == [10, 20]

    def test_missing_column_rejected(self, series):
        with pytest.raises(ParameterError):
            series.add(30, alpha=3.0)
        with pytest.raises(ParameterError):
            series.add(30, alpha=3.0, beta=1.0, gamma=2.0)

    def test_point_lookup(self, series):
        assert series.at(20).get("beta") == 1.0
        with pytest.raises(ParameterError):
            series.at(99)
        with pytest.raises(ParameterError):
            series.at(10).get("gamma")

    def test_final(self, series):
        assert series.final().x == 20
        empty = ExperimentSeries("e", "t", "x", "u", ["a"])
        with pytest.raises(ParameterError):
            empty.final()


class TestRendering:
    def test_table_contains_data(self, series):
        text = render_table(series)
        assert "figX" in text
        assert "alpha (min)" in text
        assert "2.00" in text

    def test_table_with_notes(self, series):
        series.notes = "important caveat"
        assert "important caveat" in render_table(series)

    def test_chart(self, series):
        text = render_chart(series, "alpha", width=20)
        lines = text.splitlines()
        assert len(lines) == 3
        # The bigger value gets the longer bar.
        assert lines[2].count("#") > lines[1].count("#")

    def test_write_result_file(self, series, tmp_path):
        path = write_result_file(render_table(series), "figX.txt", str(tmp_path))
        assert os.path.exists(path)
        with open(path) as handle:
            assert "figX" in handle.read()


class TestSeriesPoint:
    def test_get(self):
        p = SeriesPoint(5, {"a": 1.0})
        assert p.get("a") == 1.0
        with pytest.raises(ParameterError):
            p.get("b")
