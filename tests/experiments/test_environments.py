"""Tests for the environment presets."""

from repro.experiments.environments import long_distance, short_distance, wireless
from repro.net.link import links
from repro.timing.costmodel import Op, profiles


class TestPresets:
    def test_short_distance_wiring(self):
        assert short_distance.link is links.cluster
        assert short_distance.client_profile is profiles.pentium3_2ghz
        assert short_distance.server_profile is profiles.pentium3_2ghz

    def test_long_distance_wiring(self):
        assert long_distance.link is links.modem
        assert long_distance.client_profile is profiles.ultrasparc_500mhz
        assert long_distance.server_profile is profiles.pentium_1ghz

    def test_wireless_medium(self):
        assert wireless.link is links.wireless_multihop


class TestContextConstruction:
    def test_default_context(self):
        ctx = short_distance.context(seed="env")
        assert ctx.link is links.cluster
        assert ctx.key_bits == 512
        assert ctx.mode == "modelled"

    def test_java_context(self):
        plain = short_distance.context(seed="env")
        java = short_distance.context(java=True, seed="env")
        ratio = java.op_cost("client", Op.ENCRYPT) / plain.op_cost(
            "client", Op.ENCRYPT
        )
        assert ratio == 5.0

    def test_long_distance_asymmetric_hardware(self):
        ctx = long_distance.context(seed="env")
        client_cost = ctx.op_cost("client", Op.ENCRYPT)
        server_cost = ctx.op_cost("server", Op.ENCRYPT)
        assert client_cost == 2 * server_cost  # 4x vs 2x the P-III

    def test_measured_mode(self):
        ctx = short_distance.context(seed="env", mode="measured", key_bits=64)
        assert ctx.mode == "measured"
