"""Regression lock: the reproduced numbers, pinned.

The performance model is deterministic, so every figure's values are
exactly reproducible.  This suite pins the headline numbers recorded in
EXPERIMENTS.md — if an engine or model change moves any of them, this
fails loudly and EXPERIMENTS.md must be re-derived (that is the point:
the documented numbers and the code can never drift apart silently).
"""

import pytest

from repro.experiments import figures


N = 100_000
REL = 1e-3


@pytest.fixture(scope="module")
def fig2():
    return figures.figure2(sizes=(N,)).final()


class TestFigure2Lock:
    def test_components_at_100k(self, fig2):
        assert fig2.get("client_encrypt") == pytest.approx(18.00, rel=REL)
        assert fig2.get("server_compute") == pytest.approx(1.3333, rel=REL)
        assert fig2.get("communication") == pytest.approx(0.7518, rel=REL)
        assert fig2.get("client_decrypt") == pytest.approx(0.000183, rel=1e-2)

    def test_total_at_100k(self, fig2):
        total = sum(
            fig2.get(c) for c in (
                "client_encrypt", "server_compute",
                "communication", "client_decrypt",
            )
        )
        assert total == pytest.approx(20.085, rel=REL)


class TestFigure3Lock:
    def test_components_at_100k(self):
        point = figures.figure3(sizes=(N,)).final()
        assert point.get("client_encrypt") == pytest.approx(72.00, rel=REL)
        assert point.get("server_compute") == pytest.approx(2.667, rel=REL)
        assert point.get("communication") == pytest.approx(33.14, rel=REL)


class TestOptimizationLocks:
    def test_figure4_batching_reduction(self):
        point = figures.figure4(sizes=(N,)).final()
        assert point.get("reduction_pct") == pytest.approx(10.37, abs=0.05)
        assert point.get("with_batching") == pytest.approx(18.00, rel=REL)

    def test_figure5_preprocessing_components(self):
        point = figures.figure5(sizes=(N,)).final()
        assert point.get("client_encrypt") == pytest.approx(0.8333, rel=REL)
        assert point.get("server_compute") == pytest.approx(1.3333, rel=REL)

    def test_figure6_modem_communication_dominates(self):
        point = figures.figure6(sizes=(N,)).final()
        assert point.get("communication") == pytest.approx(33.14, rel=REL)
        assert point.get("client_encrypt") == pytest.approx(3.333, rel=REL)

    def test_figure7_combined_reduction(self):
        point = figures.figure7(sizes=(N,)).final()
        assert point.get("reduction_pct") == pytest.approx(93.36, abs=0.05)
        assert point.get("combined") == pytest.approx(1.334, rel=REL)

    def test_figure9_multiclient(self):
        point = figures.figure9(sizes=(N,)).final()
        assert point.get("without_secret_sharing") == pytest.approx(97.42, rel=REL)
        assert point.get("with_secret_sharing") == pytest.approx(32.48, rel=REL)
        assert point.get("speedup") == pytest.approx(3.00, abs=0.005)

    def test_language_factor(self):
        point = figures.text_language_factor(sizes=(N,)).final()
        assert point.get("compute_ratio") == pytest.approx(5.00, rel=1e-6)


class TestEstimatorLock:
    """The estimator predicts the same locked numbers analytically."""

    def test_plain_estimate_matches_lock(self):
        from repro.experiments.environments import short_distance
        from repro.spfe.estimator import ProtocolCostEstimator

        estimate = ProtocolCostEstimator(short_distance.context()).plain(N)
        assert estimate.online_minutes() == pytest.approx(20.085, rel=REL)
        assert estimate.breakdown.client_encrypt_s / 60 == pytest.approx(
            18.00, rel=REL
        )

    def test_wire_bytes_lock(self):
        from repro.experiments.environments import short_distance
        from repro.spfe.estimator import ProtocolCostEstimator

        estimate = ProtocolCostEstimator(short_distance.context()).plain(N)
        # 72-byte key message + 100,000 x 136-byte ciphertext messages.
        assert estimate.bytes_up == 72 + N * 136
        assert estimate.bytes_down == 136
