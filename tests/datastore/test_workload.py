"""Tests for :mod:`repro.datastore.workload`."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datastore.workload import (
    PAPER_DATABASE_SIZES,
    WorkloadGenerator,
    indices_to_bits,
)
from repro.exceptions import ParameterError


class TestIndicesToBits:
    def test_basic(self):
        assert indices_to_bits(5, [0, 3]) == [1, 0, 0, 1, 0]

    def test_empty_selection(self):
        assert indices_to_bits(3, []) == [0, 0, 0]

    def test_rejects_duplicates(self):
        with pytest.raises(ParameterError):
            indices_to_bits(5, [1, 1])

    def test_rejects_out_of_range(self):
        with pytest.raises(ParameterError):
            indices_to_bits(5, [5])


class TestPaperSizes:
    def test_sweep_matches_paper(self):
        assert PAPER_DATABASE_SIZES[0] == 10_000
        assert PAPER_DATABASE_SIZES[-1] == 100_000
        assert len(PAPER_DATABASE_SIZES) == 10


class TestDatabaseGeneration:
    def test_deterministic(self):
        a = WorkloadGenerator("s").database(100)
        b = WorkloadGenerator("s").database(100)
        assert a == b

    def test_different_seeds_differ(self):
        a = WorkloadGenerator("s1").database(100)
        b = WorkloadGenerator("s2").database(100)
        assert a != b

    def test_size_and_range(self):
        db = WorkloadGenerator("s").database(500, value_bits=8)
        assert len(db) == 500
        assert all(0 <= v < 256 for v in db)

    def test_rejects_empty(self):
        with pytest.raises(ParameterError):
            WorkloadGenerator("s").database(0)

    def test_values_spread(self):
        db = WorkloadGenerator("s").database(1000)
        assert len(set(db.values)) > 900  # 32-bit values barely collide


class TestSelections:
    @pytest.mark.parametrize(
        "method", ["random_selection", "range_selection", "clustered_selection"]
    )
    def test_exactly_m_ones(self, method):
        generator = WorkloadGenerator("sel")
        bits = getattr(generator, method)(1000, 37)
        assert len(bits) == 1000
        assert sum(bits) == 37
        assert set(bits) <= {0, 1}

    @pytest.mark.parametrize(
        "method", ["random_selection", "range_selection", "clustered_selection"]
    )
    def test_deterministic(self, method):
        a = getattr(WorkloadGenerator("x"), method)(500, 20)
        b = getattr(WorkloadGenerator("x"), method)(500, 20)
        assert a == b

    def test_range_selection_contiguous(self):
        bits = WorkloadGenerator("r").range_selection(1000, 50)
        ones = [i for i, b in enumerate(bits) if b]
        assert ones == list(range(ones[0], ones[0] + 50))

    def test_full_and_empty_selection(self):
        generator = WorkloadGenerator("e")
        assert sum(generator.random_selection(100, 100)) == 100
        assert sum(generator.random_selection(100, 0)) == 0

    def test_rejects_m_over_n(self):
        with pytest.raises(ParameterError):
            WorkloadGenerator("e").random_selection(10, 11)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 2000), st.data())
    def test_random_selection_property(self, n, data):
        m = data.draw(st.integers(0, n))
        bits = WorkloadGenerator("prop").random_selection(n, m)
        assert sum(bits) == m and len(bits) == n


class TestWeights:
    def test_range(self):
        weights = WorkloadGenerator("w").weights(200, max_weight=10)
        assert len(weights) == 200
        assert all(0 <= w <= 10 for w in weights)

    def test_rejects_bad_max(self):
        with pytest.raises(ParameterError):
            WorkloadGenerator("w").weights(10, max_weight=0)
