"""Tests for :mod:`repro.datastore.database`."""

import pytest
from hypothesis import given, strategies as st

from repro.datastore.database import MAX_VALUE, ServerDatabase
from repro.exceptions import DatabaseError


class TestConstruction:
    def test_basic(self):
        db = ServerDatabase([1, 2, 3])
        assert len(db) == 3
        assert db[1] == 2
        assert list(db) == [1, 2, 3]

    def test_rejects_empty(self):
        with pytest.raises(DatabaseError):
            ServerDatabase([])

    def test_rejects_negative(self):
        with pytest.raises(DatabaseError):
            ServerDatabase([1, -2])

    def test_rejects_over_range(self):
        with pytest.raises(DatabaseError):
            ServerDatabase([MAX_VALUE + 1])
        ServerDatabase([MAX_VALUE])  # boundary ok

    def test_rejects_non_integers(self):
        with pytest.raises(DatabaseError):
            ServerDatabase([1.5])  # type: ignore[list-item]
        with pytest.raises(DatabaseError):
            ServerDatabase([True])

    def test_rejects_bad_value_bits(self):
        with pytest.raises(DatabaseError):
            ServerDatabase([1], value_bits=0)

    def test_custom_value_bits(self):
        db = ServerDatabase([255], value_bits=8)
        with pytest.raises(DatabaseError):
            ServerDatabase([256], value_bits=8)
        assert db.value_bits == 8

    def test_equality(self):
        assert ServerDatabase([1, 2]) == ServerDatabase([1, 2])
        assert ServerDatabase([1, 2]) != ServerDatabase([2, 1])
        assert ServerDatabase([1], value_bits=8) != ServerDatabase([1], value_bits=16)


class TestViews:
    def test_chunks(self):
        db = ServerDatabase([1, 2, 3, 4, 5])
        chunks = list(db.chunks(2))
        assert chunks == [(0, (1, 2)), (2, (3, 4)), (4, (5,))]

    def test_chunks_validate_size(self):
        with pytest.raises(DatabaseError):
            list(ServerDatabase([1]).chunks(0))

    def test_squared_view(self):
        db = ServerDatabase([3, 4], value_bits=8)
        squared = db.squared()
        assert squared.values == (9, 16)
        assert squared.value_bits == 16

    def test_squared_of_max_value(self):
        db = ServerDatabase([MAX_VALUE])
        assert db.squared()[0] == MAX_VALUE**2


class TestSums:
    def test_select_sum(self):
        db = ServerDatabase([10, 20, 30])
        assert db.select_sum([1, 0, 1]) == 40
        assert db.select_sum([0, 0, 0]) == 0
        assert db.select_sum([2, 1, 0]) == 40  # weights

    def test_select_sum_validates_length(self):
        with pytest.raises(DatabaseError):
            ServerDatabase([1, 2]).select_sum([1])

    def test_max_selected_sum(self):
        db = ServerDatabase([1, 2, 3], value_bits=8)
        assert db.max_selected_sum(2) == 2 * 255
        with pytest.raises(DatabaseError):
            db.max_selected_sum(4)
        with pytest.raises(DatabaseError):
            db.max_selected_sum(-1)

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=50), st.data())
    def test_select_sum_matches_python(self, values, data):
        db = ServerDatabase(values)
        bits = data.draw(
            st.lists(st.integers(0, 1), min_size=len(values), max_size=len(values))
        )
        assert db.select_sum(bits) == sum(v for v, b in zip(values, bits) if b)
