"""Tests for the named-column table layer."""

import pytest

from repro.datastore.database import ServerDatabase
from repro.datastore.table import Table
from repro.exceptions import DatabaseError


@pytest.fixture()
def table():
    return Table(
        {"age": [30, 40, 50, 60], "bp": [110, 120, 140, 130]},
        value_bits=16,
    )


class TestConstruction:
    def test_shape(self, table):
        assert len(table) == 4
        assert table.column_names == ["age", "bp"]
        assert "age" in table
        assert "weight" not in table

    def test_accepts_ready_databases(self):
        db = ServerDatabase([1, 2], value_bits=8)
        t = Table({"x": db})
        assert t.column("x") is db

    def test_rejects_empty(self):
        with pytest.raises(DatabaseError):
            Table({})

    def test_rejects_unequal_lengths(self):
        with pytest.raises(DatabaseError):
            Table({"a": [1, 2], "b": [1]})

    def test_rejects_bad_names(self):
        with pytest.raises(DatabaseError):
            Table({"": [1]})
        with pytest.raises(DatabaseError):
            Table({3: [1]})  # type: ignore[dict-item]

    def test_value_bits_applied(self):
        with pytest.raises(DatabaseError):
            Table({"x": [256]}, value_bits=8)

    def test_from_rows(self):
        t = Table.from_rows(["a", "b"], [(1, 2), (3, 4), (5, 6)], value_bits=8)
        assert t.column("a").values == (1, 3, 5)
        assert t.column("b").values == (2, 4, 6)

    def test_from_rows_validates_width(self):
        with pytest.raises(DatabaseError):
            Table.from_rows(["a", "b"], [(1,)])


class TestViews:
    def test_column_lookup(self, table):
        assert table.column("age").values == (30, 40, 50, 60)
        with pytest.raises(DatabaseError):
            table.column("height")

    def test_squared_column(self, table):
        assert table.squared_column("age").values == (900, 1600, 2500, 3600)

    def test_product_column(self, table):
        product = table.product_column("age", "bp")
        assert product.values == (3300, 4800, 7000, 7800)
        assert product.value_bits == 32

    def test_row(self, table):
        assert table.row(1) == {"age": 40, "bp": 120}
        with pytest.raises(DatabaseError):
            table.row(4)

    def test_repr(self, table):
        assert "rows=4" in repr(table)
