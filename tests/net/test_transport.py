"""Tests for the resilient transport layer (timeouts, retry, backoff)."""

import socket

import pytest

from repro.crypto.rng import DeterministicRandom
from repro.exceptions import (
    RetryExhausted,
    TransportError,
    TransportTimeout,
)
from repro.net.transport import (
    MemoryTransport,
    RetryPolicy,
    SocketTransport,
    call_with_retry,
    memory_pair,
)


class TestSocketTransport:
    def test_roundtrip_and_accounting(self):
        a, b = socket.socketpair()
        ta, tb = SocketTransport(a), SocketTransport(b)
        try:
            ta.send(b"hello")
            assert tb.recv() == b"hello"
            assert ta.bytes_sent == 5
            assert tb.bytes_received == 5
        finally:
            ta.close()
            tb.close()

    def test_recv_timeout_is_typed(self):
        a, b = socket.socketpair()
        ta, tb = SocketTransport(a), SocketTransport(b, read_timeout=0.05)
        try:
            with pytest.raises(TransportTimeout):
                tb.recv()
        finally:
            ta.close()
            tb.close()

    def test_peer_close_reads_eof(self):
        a, b = socket.socketpair()
        ta, tb = SocketTransport(a), SocketTransport(b, read_timeout=1.0)
        ta.close()
        try:
            assert tb.recv() == b""
        finally:
            tb.close()

    def test_use_after_close_is_typed(self):
        a, b = socket.socketpair()
        transport = SocketTransport(a)
        transport.close()
        transport.close()  # idempotent
        with pytest.raises(TransportError):
            transport.send(b"x")
        with pytest.raises(TransportError):
            transport.recv()
        b.close()

    def test_connect_refused_is_typed(self):
        listener = socket.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]
        listener.close()
        with pytest.raises(TransportError):
            SocketTransport.connect("127.0.0.1", port, connect_timeout=0.5)

    def test_context_manager_closes(self):
        a, b = socket.socketpair()
        with SocketTransport(a) as transport:
            transport.send(b"x")
        with pytest.raises(TransportError):
            transport.send(b"y")
        b.close()


class TestMemoryTransport:
    def test_pair_roundtrip(self):
        a, b = memory_pair()
        a.send(b"abc")
        a.send(b"def")
        assert b.recv() == b"abc"
        assert b.recv(2) == b"de"
        assert b.recv() == b"f"
        assert a.bytes_sent == 6
        assert b.bytes_received == 6

    def test_empty_recv_is_timeout_while_peer_open(self):
        _, b = memory_pair()
        with pytest.raises(TransportTimeout):
            b.recv()

    def test_peer_close_reads_eof(self):
        a, b = memory_pair()
        a.send(b"tail")
        a.close()
        assert b.recv() == b"tail"
        assert b.recv() == b""
        with pytest.raises(TransportError):
            b.send(b"x")

    def test_pending_counts_queued_bytes(self):
        a, b = memory_pair()
        a.send(b"12345")
        assert b.pending() == 5
        b.recv(2)
        assert b.pending() == 3


class TestRetryPolicy:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay_s=0.1, max_delay_s=0.5, multiplier=2.0, jitter=0.0
        )
        rng = DeterministicRandom("unused")
        delays = list(policy.delays(rng))
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_is_bounded_and_seeded(self):
        policy = RetryPolicy(base_delay_s=1.0, max_delay_s=10.0, jitter=0.5)
        one = [policy.delay_s(1, DeterministicRandom(s)) for s in range(50)]
        two = [policy.delay_s(1, DeterministicRandom(s)) for s in range(50)]
        assert one == two  # same seeds, same schedule
        assert all(0.5 <= d <= 1.5 for d in one)
        assert len(set(one)) > 1  # and it actually jitters


class TestCallWithRetry:
    def test_succeeds_after_transient_failures(self):
        attempts = []
        slept = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise TransportError("transient")
            return "ok"

        result = call_with_retry(
            flaky,
            RetryPolicy(max_attempts=5, jitter=0.0, base_delay_s=0.01),
            rng=DeterministicRandom("r"),
            sleep=slept.append,
        )
        assert result == "ok"
        assert len(attempts) == 3
        assert slept == [0.01, 0.02]

    def test_exhaustion_chains_last_error(self):
        def always_down():
            raise TransportTimeout("still down")

        with pytest.raises(RetryExhausted) as excinfo:
            call_with_retry(
                always_down,
                RetryPolicy(max_attempts=3, jitter=0.0, base_delay_s=0.0),
                sleep=lambda _: None,
            )
        assert isinstance(excinfo.value.__cause__, TransportTimeout)

    def test_non_retryable_errors_propagate(self):
        calls = []

        def broken():
            calls.append(1)
            raise ValueError("a bug, not weather")

        with pytest.raises(ValueError):
            call_with_retry(broken, RetryPolicy(max_attempts=5), sleep=lambda _: None)
        assert len(calls) == 1
