"""Tests for :mod:`repro.net.channel` and :mod:`repro.net.wire`."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import ChannelError
from repro.net.channel import Channel, Pipe
from repro.net.link import LinkModel, links
from repro.net.wire import Message, MessageLog, vector_wire_bytes


def msg(kind="data", payload=None, size=100, sender="client"):
    return Message(kind, payload, size, sender)


SLOW = LinkModel("slow", bandwidth_bps=8000, latency_s=0.5, per_message_overhead_s=0.1)


class TestMessage:
    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            Message("k", None, -1, "s")

    def test_vector_wire_bytes(self):
        assert vector_wire_bytes(10, 128, per_message=True) == 10 * 128 + 10 * 8
        assert vector_wire_bytes(10, 128, per_message=False) == 10 * 128 + 8
        with pytest.raises(ValueError):
            vector_wire_bytes(-1, 8, True)


class TestMessageLog:
    def test_accounting(self):
        log = MessageLog()
        log.record(msg("a", 1, 10))
        log.record(msg("b", 2, 20))
        log.record(msg("a", 3, 30))
        assert log.total_bytes() == 60
        assert log.count() == 3
        assert log.count("a") == 2
        assert log.payloads("a") == [1, 3]


class TestPipe:
    def test_fifo_delivery(self):
        pipe = Pipe(links.loopback)
        pipe.send(msg(payload=1))
        pipe.send(msg(payload=2))
        assert pipe.recv()[0].payload == 1
        assert pipe.recv()[0].payload == 2

    def test_empty_recv_raises(self):
        with pytest.raises(ChannelError):
            Pipe(links.loopback).recv()

    def test_byte_counters(self):
        pipe = Pipe(links.loopback)
        pipe.send(msg(size=100))
        pipe.send(msg(size=50))
        assert pipe.bytes_sent == 150
        assert pipe.messages_sent == 2

    def test_arrival_formula_single_message(self):
        pipe = Pipe(SLOW)
        # 1000 bytes at 8000 bps = 1s serial + 0.1 overhead + 0.5 latency
        arrival = pipe.send(msg(size=1000), sender_time=2.0)
        assert arrival == pytest.approx(3.6)

    def test_stream_serializes_on_link(self):
        pipe = Pipe(SLOW)
        first = pipe.send(msg(size=1000), sender_time=0.0)
        second = pipe.send(msg(size=1000), sender_time=0.0)
        # Second message waits for the first to clear the link.
        assert second == pytest.approx(first + 1.1)

    def test_overhead_charged_per_message(self):
        pipe = Pipe(SLOW)
        last = 0.0
        for _ in range(10):
            last = pipe.send(msg(size=0), sender_time=0.0)
        # 10 messages of pure overhead: 10 * 0.1 + latency.
        assert last == pytest.approx(10 * 0.1 + 0.5)

    def test_sender_time_respected(self):
        pipe = Pipe(SLOW)
        pipe.send(msg(size=1000), sender_time=0.0)
        # A message produced long after the link went idle starts then.
        late = pipe.send(msg(size=1000), sender_time=100.0)
        assert late == pytest.approx(101.6)

    def test_reset_clock(self):
        pipe = Pipe(SLOW)
        pipe.send(msg(size=1000), sender_time=0.0)
        pipe.recv()
        pipe.reset_clock()
        assert pipe.send(msg(size=1000), sender_time=0.0) == pytest.approx(1.6)

    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=30))
    def test_arrivals_monotone(self, sizes):
        pipe = Pipe(SLOW)
        arrivals = [pipe.send(msg(size=s), sender_time=0.0) for s in sizes]
        assert arrivals == sorted(arrivals)


class TestChannel:
    def test_directional_accounting(self):
        channel = Channel(links.loopback)
        channel.client_send(msg(size=100))
        channel.client_send(msg(size=100))
        channel.server_send(msg(size=30, sender="server"))
        assert channel.bytes_up == 200
        assert channel.bytes_down == 30
        assert channel.total_bytes() == 230

    def test_views_record_received_only(self):
        channel = Channel(links.loopback)
        channel.client_send(msg("request"))
        channel.server_recv()
        channel.server_send(msg("reply", sender="server"))
        channel.client_recv()
        assert channel.server_view.count("request") == 1
        assert channel.client_view.count("reply") == 1

    def test_drain_check(self):
        channel = Channel(links.loopback)
        channel.client_send(msg())
        with pytest.raises(ChannelError):
            channel.drain_check()
        channel.server_recv()
        channel.drain_check()  # no raise
