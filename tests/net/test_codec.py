"""Tests for the byte-level wire codec."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ProtocolError
from repro.net import codec
from repro.net.codec import Frame, FrameDecoder, FrameType


class TestFraming:
    def test_roundtrip(self):
        data = codec.encode_frame(FrameType.RESULT, b"payload")
        decoder = FrameDecoder()
        decoder.feed(data)
        frames = list(decoder.frames())
        assert frames == [Frame(FrameType.RESULT, b"payload")]

    def test_header_size_matches_model(self):
        """The codec's 8-byte header is exactly what the performance
        model charges per message (FRAME_HEADER_BYTES)."""
        from repro.crypto.serialization import FRAME_HEADER_BYTES

        data = codec.encode_frame(FrameType.RESULT, b"")
        assert len(data) == FRAME_HEADER_BYTES

    def test_unknown_type_rejected_on_encode(self):
        with pytest.raises(ProtocolError):
            codec.encode_frame(99, b"")

    def test_unknown_type_rejected_on_decode(self):
        decoder = FrameDecoder()
        decoder.feed(b"\x00\x00\x00\x63\x00\x00\x00\x00")
        with pytest.raises(ProtocolError):
            list(decoder.frames())

    def test_oversized_payload_rejected(self):
        decoder = FrameDecoder()
        decoder.feed(b"\x00\x00\x00\x01\xff\xff\xff\xff")
        with pytest.raises(ProtocolError):
            list(decoder.frames())

    def test_partial_frames_buffered(self):
        data = codec.encode_frame(FrameType.ERROR, b"oops")
        decoder = FrameDecoder()
        decoder.feed(data[:3])
        assert list(decoder.frames()) == []
        decoder.feed(data[3:7])
        assert list(decoder.frames()) == []
        decoder.feed(data[7:])
        assert list(decoder.frames()) == [Frame(FrameType.ERROR, b"oops")]
        assert decoder.pending_bytes() == 0

    def test_multiple_frames_per_feed(self):
        data = codec.encode_frame(FrameType.HELLO, b"\x00" * 12) + codec.encode_frame(
            FrameType.ERROR, b"x"
        )
        decoder = FrameDecoder()
        decoder.feed(data)
        assert len(list(decoder.frames())) == 2

    @given(st.lists(st.binary(max_size=200), max_size=10), st.integers(1, 17))
    def test_any_chunking_reassembles(self, payloads, read_size):
        stream = b"".join(
            codec.encode_frame(FrameType.ERROR, p) for p in payloads
        )
        decoder = FrameDecoder()
        out = []
        for i in range(0, len(stream), read_size):
            decoder.feed(stream[i : i + read_size])
            out.extend(decoder.frames())
        assert [f.payload for f in out] == payloads


class TestPayloadCodecs:
    def test_hello_roundtrip(self):
        data = codec.encode_hello(512, 100_000, 64)
        decoder = FrameDecoder()
        decoder.feed(data)
        frame = next(decoder.frames())
        assert codec.decode_hello(frame.payload) == (512, 100_000, 64, None)

    def test_hello_roundtrip_with_session_id(self):
        sid = bytes(range(16))
        data = codec.encode_hello(512, 100_000, 64, session_id=sid)
        decoder = FrameDecoder()
        decoder.feed(data)
        frame = next(decoder.frames())
        assert codec.decode_hello(frame.payload) == (512, 100_000, 64, sid)

    def test_hello_rejects_bad_session_id_width(self):
        with pytest.raises(ProtocolError):
            codec.encode_hello(512, 10, 5, session_id=b"short")

    def test_resume_roundtrip(self):
        sid = b"\xab" * codec.SESSION_ID_BYTES
        decoder = FrameDecoder()
        decoder.feed(codec.encode_resume(sid))
        frame = next(decoder.frames())
        assert frame.frame_type == FrameType.RESUME
        assert codec.decode_resume(frame.payload) == sid
        with pytest.raises(ProtocolError):
            codec.decode_resume(b"wrong-size")
        with pytest.raises(ProtocolError):
            codec.encode_resume(b"short")

    def test_ack_roundtrip(self):
        decoder = FrameDecoder()
        decoder.feed(codec.encode_ack(7) + codec.encode_ack(codec.RESUME_UNKNOWN))
        frames = list(decoder.frames())
        assert [codec.decode_ack(f.payload) for f in frames] == [
            7,
            codec.RESUME_UNKNOWN,
        ]
        with pytest.raises(ProtocolError):
            codec.decode_ack(b"\x00")
        with pytest.raises(ProtocolError):
            codec.encode_ack(-1)

    def test_hello_version_checked(self):
        bad = codec._HELLO.pack(codec.PROTOCOL_VERSION + 1, 512, 10, 5)
        with pytest.raises(ProtocolError):
            codec.decode_hello(bad)

    def test_hello_length_checked(self):
        with pytest.raises(ProtocolError):
            codec.decode_hello(b"short")

    def test_public_key_roundtrip(self):
        n = 2**511 + 12345
        data = codec.encode_public_key(n, 512)
        decoder = FrameDecoder()
        decoder.feed(data)
        frame = next(decoder.frames())
        assert codec.decode_public_key(frame.payload) == n

    def test_empty_public_key_rejected(self):
        with pytest.raises(ProtocolError):
            codec.decode_public_key(b"")

    def test_chunk_roundtrip(self):
        cts = [1, 2**1000, 17]
        data = codec.encode_ciphertext_chunk(cts, 512)
        decoder = FrameDecoder()
        decoder.feed(data)
        frame = next(decoder.frames())
        assert codec.decode_ciphertext_chunk(frame.payload, 512) == cts

    def test_chunk_width_validated(self):
        data = codec.encode_ciphertext_chunk([1, 2], 512)
        decoder = FrameDecoder()
        decoder.feed(data)
        frame = next(decoder.frames())
        with pytest.raises(ProtocolError):
            codec.decode_ciphertext_chunk(frame.payload + b"x", 512)
        with pytest.raises(ProtocolError):
            codec.decode_ciphertext_chunk(b"\x00", 512)

    def test_result_roundtrip(self):
        ct = 2**1000 + 99
        data = codec.encode_result(ct, 512)
        decoder = FrameDecoder()
        decoder.feed(data)
        frame = next(decoder.frames())
        assert codec.decode_result(frame.payload, 512) == ct

    def test_result_width_validated(self):
        with pytest.raises(ProtocolError):
            codec.decode_result(b"\x00" * 10, 512)

    @given(st.lists(st.integers(0, 2**256 - 1), max_size=20))
    def test_chunk_roundtrip_property(self, cts):
        data = codec.encode_ciphertext_chunk(cts, 128)
        decoder = FrameDecoder()
        decoder.feed(data)
        frame = next(decoder.frames())
        assert codec.decode_ciphertext_chunk(frame.payload, 128) == cts


class TestV2Framing:
    def test_v2_roundtrip_preserves_sequence(self):
        data = codec.encode_frame(FrameType.ENC_CHUNK, b"payload", sequence=42)
        decoder = FrameDecoder()
        decoder.feed(data)
        (frame,) = decoder.frames()
        assert frame.frame_type == FrameType.ENC_CHUNK
        assert frame.payload == b"payload"
        assert frame.sequence == 42
        assert frame.version == codec.WIRE_VERSION_2
        assert frame.wire_bytes == len(data)

    def test_v2_header_is_16_bytes(self):
        assert len(codec.encode_frame(FrameType.ACK, b"", sequence=0)) == 16

    def test_v1_and_v2_interleave_on_one_stream(self):
        stream = (
            codec.encode_frame(FrameType.ERROR, b"v1")
            + codec.encode_frame(FrameType.ERROR, b"v2", sequence=1)
            + codec.encode_frame(FrameType.ERROR, b"v1-again")
        )
        decoder = FrameDecoder()
        decoder.feed(stream)
        frames = list(decoder.frames())
        assert [f.version for f in frames] == [1, 2, 1]
        assert [f.payload for f in frames] == [b"v1", b"v2", b"v1-again"]

    def test_payload_corruption_caught_by_crc(self):
        data = bytearray(codec.encode_frame(FrameType.RESULT, b"x" * 32, sequence=3))
        data[-1] ^= 0x01
        decoder = FrameDecoder()
        decoder.feed(bytes(data))
        with pytest.raises(ProtocolError):
            list(decoder.frames())

    def test_header_corruption_caught(self):
        """Flipping the sequence (or any header field) breaks the CRC —
        the header is covered, not just the payload."""
        data = bytearray(codec.encode_frame(FrameType.RESULT, b"x" * 32, sequence=3))
        data[4] ^= 0x40  # inside the sequence field
        decoder = FrameDecoder()
        decoder.feed(bytes(data))
        with pytest.raises(ProtocolError):
            list(decoder.frames())

    def test_sequence_out_of_range_rejected(self):
        with pytest.raises(ProtocolError):
            codec.encode_frame(FrameType.ACK, b"", sequence=2**32)

    def test_partial_v2_frames_buffered(self):
        data = codec.encode_frame(FrameType.ERROR, b"oops", sequence=9)
        decoder = FrameDecoder()
        decoder.feed(data[:1])
        assert list(decoder.frames()) == []
        decoder.feed(data[1:15])
        assert list(decoder.frames()) == []
        decoder.feed(data[15:])
        (frame,) = decoder.frames()
        assert frame.payload == b"oops" and frame.sequence == 9


class TestFuzzDecoder:
    """Seeded random mutations of valid v2 streams: every outcome must be
    either a clean decode of original frames or a ``ProtocolError`` —
    never a different exception, never a silently different frame."""

    @staticmethod
    def _valid_stream(rng):
        frames = []
        for seq in range(rng.randbelow(6) + 1):
            frame_type = [
                FrameType.HELLO,
                FrameType.ENC_CHUNK,
                FrameType.RESULT,
                FrameType.ERROR,
                FrameType.ACK,
            ][rng.randbelow(5)]
            payload = rng.randbytes(rng.randbelow(120))
            frames.append(codec.encode_frame(frame_type, payload, sequence=seq))
        return frames

    @staticmethod
    def _mutate(stream, rng):
        kind = rng.randbelow(3)
        if kind == 0 and stream:  # bit flip
            data = bytearray(stream)
            pos = rng.randbelow(len(data))
            data[pos] ^= 1 << rng.randbelow(8)
            return bytes(data)
        if kind == 1:  # truncate
            return stream[: rng.randbelow(len(stream) + 1)]
        # splice random bytes at a random position
        pos = rng.randbelow(len(stream) + 1)
        return stream[:pos] + rng.randbytes(1 + rng.randbelow(24)) + stream[pos:]

    @pytest.mark.parametrize("seed", range(200))
    def test_mutated_streams_never_yield_wrong_frames(self, seed):
        from repro.crypto.rng import DeterministicRandom

        rng = DeterministicRandom("codec-fuzz-%d" % seed)
        originals = self._valid_stream(rng)
        stream = self._mutate(b"".join(originals), rng)
        valid_frames = set(originals)

        decoder = FrameDecoder()
        decoded = []
        read_size = 1 + rng.randbelow(37)
        try:
            for i in range(0, len(stream), read_size):
                decoder.feed(stream[i : i + read_size])
                decoded.extend(decoder.frames())
        except ProtocolError:
            return  # loud, typed rejection: exactly what corruption earns
        # Clean decode: every surfaced frame must re-encode to one of the
        # original wire frames, byte for byte — no silent damage.
        for frame in decoded:
            assert frame.version == codec.WIRE_VERSION_2
            reencoded = codec.encode_frame(
                frame.frame_type, frame.payload, sequence=frame.sequence
            )
            assert reencoded in valid_frames

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_hypothesis_mutations(self, data):
        payloads = data.draw(st.lists(st.binary(max_size=80), max_size=5))
        stream = bytearray(
            b"".join(
                codec.encode_frame(FrameType.ERROR, p, sequence=i)
                for i, p in enumerate(payloads)
            )
        )
        if stream:
            pos = data.draw(st.integers(0, len(stream) - 1))
            stream[pos] ^= data.draw(st.integers(1, 255))
        decoder = FrameDecoder()
        decoder.feed(bytes(stream))
        try:
            decoded = list(decoder.frames())
        except ProtocolError:
            return
        for frame in decoded:
            assert frame.payload in payloads


class TestTypedErrorPayload:
    def test_roundtrip_with_code(self):
        data = codec.encode_error("quota exceeded", codec.ERROR_CODE_POLICY, 0)
        decoder = FrameDecoder()
        decoder.feed(data)
        (frame,) = decoder.frames()
        assert frame.frame_type == FrameType.ERROR
        code, message = codec.decode_error(frame.payload)
        assert code == codec.ERROR_CODE_POLICY
        assert message == "quota exceeded"

    def test_untagged_payload_decodes_as_protocol_error(self):
        code, message = codec.decode_error(b"plain old message")
        assert code == codec.ERROR_CODE_PROTOCOL
        assert message == "plain old message"

    def test_unknown_code_rejected_by_encoder(self):
        with pytest.raises(ProtocolError):
            codec.encode_error("x", 99)

    def test_unknown_code_degrades_to_untagged_decode(self):
        """A future peer's new error code must not hard-fail old
        clients; the payload decodes as a generic protocol error."""
        code, message = codec.decode_error(bytes((0xEE, 99)) + b"x")
        assert code == codec.ERROR_CODE_PROTOCOL
        assert message  # best-effort text, never an exception

    def test_legacy_payload_starting_with_magic_byte(self):
        """U+E000..U+EFFF encode with a 0xEE lead byte; an untagged
        legacy message starting with one must decode verbatim."""
        text = "\ue000 legacy oops"
        assert text.encode("utf-8")[0] == 0xEE
        code, message = codec.decode_error(text.encode("utf-8"))
        assert code == codec.ERROR_CODE_PROTOCOL
        assert message == text


class TestBusyFrame:
    def test_roundtrip(self):
        data = codec.encode_busy(250)
        decoder = FrameDecoder()
        decoder.feed(data)
        (frame,) = decoder.frames()
        assert frame.frame_type == FrameType.BUSY
        assert codec.decode_busy(frame.payload) == 250

    def test_hint_range_validated(self):
        with pytest.raises(ProtocolError):
            codec.encode_busy(-1)
        with pytest.raises(ProtocolError):
            codec.encode_busy(1 << 32)

    def test_malformed_payload_rejected(self):
        with pytest.raises(ProtocolError):
            codec.decode_busy(b"\x00")


class TestDecoderPayloadCap:
    def test_policy_cap_tighter_than_default(self):
        decoder = FrameDecoder(max_payload=16)
        decoder.feed(codec.encode_frame(FrameType.ERROR, b"x" * 17, 0))
        with pytest.raises(ProtocolError):
            list(decoder.frames())

    def test_cap_allows_exact_size(self):
        decoder = FrameDecoder(max_payload=16)
        decoder.feed(codec.encode_frame(FrameType.ERROR, b"x" * 16, 0))
        (frame,) = decoder.frames()
        assert frame.payload == b"x" * 16

    def test_nonpositive_cap_rejected(self):
        with pytest.raises(ProtocolError):
            FrameDecoder(max_payload=0)
