"""Tests for the byte-level wire codec."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import ProtocolError
from repro.net import codec
from repro.net.codec import Frame, FrameDecoder, FrameType


class TestFraming:
    def test_roundtrip(self):
        data = codec.encode_frame(FrameType.RESULT, b"payload")
        decoder = FrameDecoder()
        decoder.feed(data)
        frames = list(decoder.frames())
        assert frames == [Frame(FrameType.RESULT, b"payload")]

    def test_header_size_matches_model(self):
        """The codec's 8-byte header is exactly what the performance
        model charges per message (FRAME_HEADER_BYTES)."""
        from repro.crypto.serialization import FRAME_HEADER_BYTES

        data = codec.encode_frame(FrameType.RESULT, b"")
        assert len(data) == FRAME_HEADER_BYTES

    def test_unknown_type_rejected_on_encode(self):
        with pytest.raises(ProtocolError):
            codec.encode_frame(99, b"")

    def test_unknown_type_rejected_on_decode(self):
        decoder = FrameDecoder()
        decoder.feed(b"\x00\x00\x00\x63\x00\x00\x00\x00")
        with pytest.raises(ProtocolError):
            list(decoder.frames())

    def test_oversized_payload_rejected(self):
        decoder = FrameDecoder()
        decoder.feed(b"\x00\x00\x00\x01\xff\xff\xff\xff")
        with pytest.raises(ProtocolError):
            list(decoder.frames())

    def test_partial_frames_buffered(self):
        data = codec.encode_frame(FrameType.ERROR, b"oops")
        decoder = FrameDecoder()
        decoder.feed(data[:3])
        assert list(decoder.frames()) == []
        decoder.feed(data[3:7])
        assert list(decoder.frames()) == []
        decoder.feed(data[7:])
        assert list(decoder.frames()) == [Frame(FrameType.ERROR, b"oops")]
        assert decoder.pending_bytes() == 0

    def test_multiple_frames_per_feed(self):
        data = codec.encode_frame(FrameType.HELLO, b"\x00" * 12) + codec.encode_frame(
            FrameType.ERROR, b"x"
        )
        decoder = FrameDecoder()
        decoder.feed(data)
        assert len(list(decoder.frames())) == 2

    @given(st.lists(st.binary(max_size=200), max_size=10), st.integers(1, 17))
    def test_any_chunking_reassembles(self, payloads, read_size):
        stream = b"".join(
            codec.encode_frame(FrameType.ERROR, p) for p in payloads
        )
        decoder = FrameDecoder()
        out = []
        for i in range(0, len(stream), read_size):
            decoder.feed(stream[i : i + read_size])
            out.extend(decoder.frames())
        assert [f.payload for f in out] == payloads


class TestPayloadCodecs:
    def test_hello_roundtrip(self):
        data = codec.encode_hello(512, 100_000, 64)
        decoder = FrameDecoder()
        decoder.feed(data)
        frame = next(decoder.frames())
        assert codec.decode_hello(frame.payload) == (512, 100_000, 64)

    def test_hello_version_checked(self):
        bad = codec._HELLO.pack(codec.PROTOCOL_VERSION + 1, 512, 10, 5)
        with pytest.raises(ProtocolError):
            codec.decode_hello(bad)

    def test_hello_length_checked(self):
        with pytest.raises(ProtocolError):
            codec.decode_hello(b"short")

    def test_public_key_roundtrip(self):
        n = 2**511 + 12345
        data = codec.encode_public_key(n, 512)
        decoder = FrameDecoder()
        decoder.feed(data)
        frame = next(decoder.frames())
        assert codec.decode_public_key(frame.payload) == n

    def test_empty_public_key_rejected(self):
        with pytest.raises(ProtocolError):
            codec.decode_public_key(b"")

    def test_chunk_roundtrip(self):
        cts = [1, 2**1000, 17]
        data = codec.encode_ciphertext_chunk(cts, 512)
        decoder = FrameDecoder()
        decoder.feed(data)
        frame = next(decoder.frames())
        assert codec.decode_ciphertext_chunk(frame.payload, 512) == cts

    def test_chunk_width_validated(self):
        data = codec.encode_ciphertext_chunk([1, 2], 512)
        decoder = FrameDecoder()
        decoder.feed(data)
        frame = next(decoder.frames())
        with pytest.raises(ProtocolError):
            codec.decode_ciphertext_chunk(frame.payload + b"x", 512)
        with pytest.raises(ProtocolError):
            codec.decode_ciphertext_chunk(b"\x00", 512)

    def test_result_roundtrip(self):
        ct = 2**1000 + 99
        data = codec.encode_result(ct, 512)
        decoder = FrameDecoder()
        decoder.feed(data)
        frame = next(decoder.frames())
        assert codec.decode_result(frame.payload, 512) == ct

    def test_result_width_validated(self):
        with pytest.raises(ProtocolError):
            codec.decode_result(b"\x00" * 10, 512)

    @given(st.lists(st.integers(0, 2**256 - 1), max_size=20))
    def test_chunk_roundtrip_property(self, cts):
        data = codec.encode_ciphertext_chunk(cts, 128)
        decoder = FrameDecoder()
        decoder.feed(data)
        frame = next(decoder.frames())
        assert codec.decode_ciphertext_chunk(frame.payload, 128) == cts
