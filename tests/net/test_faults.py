"""Tests for the deterministic fault injector."""

import pytest

from repro.exceptions import ParameterError, TransportError
from repro.net.faults import FaultEvent, FaultKind, FaultPlan, FaultyTransport
from repro.net.transport import memory_pair


def faulty_pair(events, **kwargs):
    a, b = memory_pair()
    return FaultyTransport(a, FaultPlan(events), **kwargs), b


class TestFaultPlan:
    def test_generation_is_deterministic(self):
        one = FaultPlan.generate(17, stream_bytes=10_000, events=5)
        two = FaultPlan.generate(17, stream_bytes=10_000, events=5)
        assert one.events == two.events
        assert len(one) == 5
        assert all(0 <= e.position < 10_000 for e in one)

    def test_different_seeds_differ(self):
        plans = {
            FaultPlan.generate(seed, stream_bytes=10_000, events=4).events
            for seed in range(10)
        }
        assert len(plans) > 1

    def test_events_sorted_by_position(self):
        plan = FaultPlan(
            [
                FaultEvent(FaultKind.DELAY, 50, 0.001),
                FaultEvent(FaultKind.CORRUPT, 10, 0xFF),
            ]
        )
        assert [e.position for e in plan] == [10, 50]
        assert "corrupt@10" in plan.describe()

    def test_validation(self):
        with pytest.raises(ParameterError):
            FaultEvent("meteor-strike", 0)
        with pytest.raises(ParameterError):
            FaultEvent(FaultKind.CORRUPT, 0, 0)  # mask must be 1..255
        with pytest.raises(ParameterError):
            FaultEvent(FaultKind.DELAY, -1)
        with pytest.raises(ParameterError):
            FaultPlan.generate(1, stream_bytes=0)
        with pytest.raises(ParameterError):
            FaultPlan.generate(1, stream_bytes=10, kinds=())
        with pytest.raises(ParameterError):
            FaultPlan.generate(1, stream_bytes=10, kinds=("nope",))


class TestFaultyTransport:
    def test_clean_plan_is_transparent(self):
        faulty, peer = faulty_pair([])
        faulty.send(b"hello")
        faulty.send(b"world")
        assert peer.recv(100) + peer.recv(100) == b"helloworld"
        assert faulty.bytes_sent == 10

    def test_corrupt_flips_exactly_one_byte(self):
        faulty, peer = faulty_pair([FaultEvent(FaultKind.CORRUPT, 7, 0x20)])
        faulty.send(b"abcde")
        faulty.send(b"fghij")
        received = peer.recv(100) + peer.recv(100)
        assert received == b"abcdefg" + bytes([ord("h") ^ 0x20]) + b"ij"
        assert [e.kind for e in faulty.fired] == [FaultKind.CORRUPT]

    def test_truncate_drops_the_tail_of_a_write(self):
        faulty, peer = faulty_pair([FaultEvent(FaultKind.TRUNCATE, 3)])
        faulty.send(b"abcdef")
        assert peer.recv(100) == b"abc"
        # Later writes still go through (the stream has desynchronised,
        # which is exactly the condition the decoder must catch).
        faulty.send(b"XYZ")
        assert peer.recv(100) == b"XYZ"

    def test_partial_write_splits_but_preserves_bytes(self):
        faulty, peer = faulty_pair([FaultEvent(FaultKind.PARTIAL_WRITE, 4)])
        faulty.send(b"abcdefgh")
        first = peer.recv(100)
        second = peer.recv(100)
        assert first == b"abcd" and second == b"efgh"

    def test_disconnect_delivers_prefix_then_kills(self):
        faulty, peer = faulty_pair([FaultEvent(FaultKind.DISCONNECT, 3)])
        with pytest.raises(TransportError):
            faulty.send(b"abcdef")
        assert peer.recv(100) == b"abc"
        assert peer.recv(100) == b""  # inner transport was closed
        with pytest.raises(TransportError):
            faulty.send(b"more")
        with pytest.raises(TransportError):
            faulty.recv()

    def test_delay_uses_injected_sleep(self):
        slept = []
        faulty, peer = faulty_pair(
            [FaultEvent(FaultKind.DELAY, 2, 0.004)], sleep=slept.append
        )
        faulty.send(b"abcd")
        assert peer.recv(100) == b"abcd"
        assert slept == [0.004]

    def test_positions_are_absolute_across_writes(self):
        faulty, peer = faulty_pair([FaultEvent(FaultKind.CORRUPT, 10, 1)])
        for _ in range(4):  # 3 bytes per write; offset 10 is in write 4
            faulty.send(b"aaa")
        received = b"".join(peer.recv(100) for _ in range(4))
        assert received[:10] == b"a" * 10
        assert received[10] == ord("a") ^ 1
        assert received[11:] == b"a"

    def test_truncate_skips_events_in_dropped_tail(self):
        faulty, peer = faulty_pair(
            [
                FaultEvent(FaultKind.TRUNCATE, 2),
                FaultEvent(FaultKind.CORRUPT, 4, 0xFF),
            ]
        )
        faulty.send(b"abcdef")  # corrupt@4 lands in the dropped tail
        assert peer.recv(100) == b"ab"
        faulty.send(b"ghijkl")  # offset 6..: the stale event must not fire
        assert peer.recv(100) == b"ghijkl"

    def test_same_plan_same_behaviour(self):
        plan = FaultPlan.generate("replay", stream_bytes=64, events=3,
                                  kinds=(FaultKind.CORRUPT, FaultKind.PARTIAL_WRITE))
        outputs = []
        for _ in range(2):
            faulty, peer = memory_pair()
            wrapped = FaultyTransport(faulty, plan)
            wrapped.send(b"0123456789" * 8)
            chunks = []
            while True:
                data = peer.recv(1000)
                if not data:
                    break
                chunks.append(data)
                if peer.pending() == 0:
                    break
            outputs.append(b"".join(chunks))
        assert outputs[0] == outputs[1]
