"""Tests for :mod:`repro.net.link`."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import ParameterError
from repro.net.link import LinkModel, links


class TestLinkModel:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ParameterError):
            LinkModel("x", bandwidth_bps=0, latency_s=0, per_message_overhead_s=0)
        with pytest.raises(ParameterError):
            LinkModel("x", bandwidth_bps=1, latency_s=-1, per_message_overhead_s=0)
        with pytest.raises(ParameterError):
            LinkModel("x", bandwidth_bps=1, latency_s=0, per_message_overhead_s=-1)

    def test_zero_transfer_is_free(self):
        assert links.cluster.transfer_seconds(0, 0) == 0.0

    def test_rejects_negative_sizes(self):
        with pytest.raises(ParameterError):
            links.cluster.transfer_seconds(-1)
        with pytest.raises(ParameterError):
            links.cluster.transfer_seconds(1, -1)

    def test_transfer_formula(self):
        link = LinkModel("t", bandwidth_bps=8000, latency_s=0.5,
                         per_message_overhead_s=0.1)
        # 1000 bytes = 8000 bits = 1 second serial + latency + 2 overheads
        assert link.transfer_seconds(1000, messages=2) == pytest.approx(1.7)

    def test_modem_is_much_slower_than_cluster(self):
        payload = 13_600_000  # ~the paper's 100k ciphertexts
        modem = links.modem.transfer_seconds(payload, 1)
        cluster = links.cluster.transfer_seconds(payload, 1)
        assert modem > 1000 * cluster

    def test_modem_paper_scale(self):
        # 100,000 ciphertexts of 136 bytes over 56Kbps: tens of minutes.
        seconds = links.modem.transfer_seconds(136 * 100_000, 100_000)
        assert 25 * 60 < seconds < 45 * 60

    def test_seconds_per_message(self):
        link = LinkModel("t", bandwidth_bps=8000, latency_s=0.5,
                         per_message_overhead_s=0.1)
        assert link.seconds_per_message(1000) == pytest.approx(1.1)

    @given(st.integers(0, 10**9), st.integers(0, 10**4))
    def test_monotone_in_size_and_messages(self, size, messages):
        link = links.wireless_multihop
        base = link.transfer_seconds(size, messages)
        assert link.transfer_seconds(size + 1000, messages) >= base
        assert link.transfer_seconds(size, messages + 1) >= base


class TestPresets:
    def test_all_presets_exist(self):
        for name in ("cluster-gigabit", "modem-56k", "wireless-multihop", "loopback"):
            assert links.by_name(name).name == name

    def test_unknown_preset(self):
        with pytest.raises(ParameterError):
            links.by_name("carrier-pigeon")

    def test_bandwidth_ordering(self):
        assert (
            links.modem.bandwidth_bps
            < links.wireless_multihop.bandwidth_bps
            < links.cluster.bandwidth_bps
            < links.loopback.bandwidth_bps
        )
