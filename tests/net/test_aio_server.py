"""Unit tests for the asyncio connection front-end (`repro.net.aio`).

The cross-backend behaviour — mixed fleets, malformed-frame corpus,
BUSY retry, SIGTERM drain, crash recovery, outcome invariant — is
covered by the parametrized suites (see ``tests/conftest.py``).  This
module pins what is specific to :class:`AsyncSpfeServer`: the sync
lifecycle facade over the loop thread, the asyncio result-send
regression, the backend info gauge, and the headline scaling property
(hundreds of concurrent clients over ``max_sessions`` slots).
"""

import json
import socket
import threading
import urllib.request

import pytest

from repro.crypto.paillier import generate_keypair
from repro.crypto.rng import DeterministicRandom
from repro.datastore.workload import WorkloadGenerator
from repro.exceptions import ParameterError, TransportError
from repro.net.aio import AsyncSpfeServer
from repro.net.codec import FrameDecoder, FrameType
from repro.net.transport import RetryPolicy, SocketTransport
from repro.spfe.session import ClientSession, run_resilient

KEY_BITS = 128
N = 20
READ_TIMEOUT = 5.0


@pytest.fixture(scope="module")
def workload():
    generator = WorkloadGenerator("aio-server-tests")
    database = generator.database(N, value_bits=16)
    selection = generator.random_selection(N, 6)
    keypair = generate_keypair(KEY_BITS, DeterministicRandom("aio-keypair"))
    return database, selection, keypair


def make_client(selection, seed="c", keypair=None):
    return ClientSession(
        selection,
        key_bits=KEY_BITS,
        chunk_size=4,
        rng=DeterministicRandom("aio-test-%s" % seed),
        keypair=keypair,
    )


def connect(port, read_timeout=READ_TIMEOUT):
    return SocketTransport.connect(
        "127.0.0.1", port, connect_timeout=READ_TIMEOUT, read_timeout=read_timeout
    )


class TestAioLifecycle:
    def test_bad_parameters_rejected(self, workload):
        database, _, __ = workload
        with pytest.raises(ParameterError):
            AsyncSpfeServer(database, max_sessions=0)
        with pytest.raises(ParameterError):
            AsyncSpfeServer(database, accept_backlog=0)
        with pytest.raises(ParameterError):
            AsyncSpfeServer(database, max_queries=-1)

    def test_port_requires_start(self, workload):
        database, _, __ = workload
        with pytest.raises(ParameterError):
            AsyncSpfeServer(database).port

    def test_double_start_rejected(self, workload):
        database, _, __ = workload
        server = AsyncSpfeServer(database).start()
        try:
            with pytest.raises(ParameterError):
                server.start()
        finally:
            server.stop(drain_deadline_s=5.0)

    def test_stop_is_idempotent(self, workload):
        database, _, __ = workload
        server = AsyncSpfeServer(database).start()
        server.stop(drain_deadline_s=5.0)
        server.stop(drain_deadline_s=5.0)
        assert server.stopped

    def test_refuses_connections_after_drain(self, workload):
        database, _, __ = workload
        server = AsyncSpfeServer(database).start()
        port = server.port
        server.stop(drain_deadline_s=5.0)
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", port), timeout=1.0)

    def test_stats_port_conflict_unwinds_startup(self, workload):
        """The transactional-startup fix holds on this front-end too:
        a taken stats port must not leak the bound listener or leave
        ``_started`` stuck True."""
        database, selection, _ = workload
        blocker = socket.create_server(("127.0.0.1", 0))
        server = AsyncSpfeServer(database, stats_port=blocker.getsockname()[1])
        try:
            with pytest.raises(OSError):
                server.start()
            assert server._started is False
            assert server._listener is None
            with pytest.raises(ParameterError):
                server.port
        finally:
            blocker.close()
        server.stats_port = 0
        server.start()
        try:
            client = make_client(selection, "post-conflict")
            value = run_resilient(client, lambda: connect(server.port))
            assert value == database.select_sum(selection)
            assert server.stats_address[1] > 0
        finally:
            server.stop(drain_deadline_s=5.0)


class TestAioOutcomeRegression:
    def test_failed_result_send_is_a_drop_not_a_serve(
        self, workload, monkeypatch
    ):
        """The asyncio twin of the vanished-outcome regression: the
        session finishes its fold, the RESULT write fails, and the
        session must land in the dropped bucket with the invariant
        intact — never logged as served with no counter moved."""
        database, selection, _ = workload
        notes = []
        server = AsyncSpfeServer(
            database, max_sessions=1, read_timeout=READ_TIMEOUT,
            log=notes.append,
        ).start()
        real_send = AsyncSpfeServer._send_reply

        async def vanishing_send(self, writer, reply):
            decoder = FrameDecoder()
            decoder.feed(reply)
            if any(
                frame.frame_type == FrameType.RESULT
                for frame in decoder.frames()
            ):
                raise TransportError("peer vanished before the result landed")
            await real_send(self, writer, reply)

        monkeypatch.setattr(AsyncSpfeServer, "_send_reply", vanishing_send)
        client = make_client(selection, "vanishing-result")
        sock = socket.create_connection(("127.0.0.1", server.port), timeout=5.0)
        try:
            for data in client.initial_bytes():
                sock.sendall(data)
            sock.settimeout(READ_TIMEOUT)
            try:
                while sock.recv(4096):
                    pass  # drain until the server closes on us
            except OSError:
                pass
        finally:
            sock.close()
            server.stop(drain_deadline_s=5.0)
        snap = server.stats.snapshot()
        assert snap["sessions_served"] == 0
        assert snap["sessions_dropped"] == 1
        assert snap["sessions_admitted"] == 1
        assert (
            snap["sessions_served"]
            + snap["sessions_dropped"]
            + snap["sessions_rejected"]
            == snap["sessions_admitted"]
        ), snap
        assert any("never delivered" in note for note in notes), notes


class TestAioObservability:
    def test_backend_info_gauge_and_health(self, workload):
        """A live asyncio server exports the backend info gauge on
        /metrics and reports healthy on /healthz."""
        database, selection, _ = workload
        server = AsyncSpfeServer(database, stats_port=0).start()
        try:
            host, port = server.stats_address
            base = "http://%s:%d" % (host, port)
            with urllib.request.urlopen(base + "/metrics", timeout=5.0) as rsp:
                text = rsp.read().decode()
            assert 'repro_server_backend{backend="asyncio"} 1' in text
            assert "repro_server_sessions_admitted_total" in text
            with urllib.request.urlopen(base + "/healthz", timeout=5.0) as rsp:
                health = json.load(rsp)
            assert health["status"] == "ok"
            # one loop thread, not a worker pool
            assert health["workers_alive"] == 1
        finally:
            server.stop(drain_deadline_s=5.0)


@pytest.mark.chaos
class TestAioFleet:
    def test_two_hundred_clients_over_eight_slots(self, workload):
        """Acceptance: a 200-client fleet completes against
        ``max_sessions=8`` with every sum exact, and the concurrency
        high-water mark proves the semaphore actually bounded serving."""
        database, selection, keypair = workload
        expected = database.select_sum(selection)
        server = AsyncSpfeServer(
            database,
            max_sessions=8,
            accept_backlog=256,
            read_timeout=15.0,
        ).start()
        port = server.port
        results = {}
        lock = threading.Lock()

        def run_one(tag):
            # the shared keypair keeps 200 clients cheap; each still
            # encrypts its own selection vector
            client = make_client(selection, "fleet-%d" % tag, keypair=keypair)
            value = run_resilient(
                client,
                lambda: connect(port, read_timeout=15.0),
                policy=RetryPolicy(max_attempts=10, base_delay_s=0.2),
            )
            with lock:
                results[tag] = value

        threads = [
            threading.Thread(target=run_one, args=(tag,)) for tag in range(200)
        ]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120.0)
                assert not thread.is_alive(), "fleet client hung"
        finally:
            server.stop(drain_deadline_s=15.0)
        assert len(results) == 200
        assert all(value == expected for value in results.values())
        snap = server.stats.snapshot()
        assert snap["sessions_served"] == 200
        assert server._core.peak_active <= 8
        assert (
            snap["sessions_served"]
            + snap["sessions_dropped"]
            + snap["sessions_rejected"]
            == snap["sessions_admitted"]
        ), snap
