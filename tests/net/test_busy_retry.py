"""BUSY-shed clients back off on a dedicated (slower) retry schedule.

A BUSY answer is not a broken connection: the server is healthy and
saturated, so re-entering on the crash-retry schedule just re-joins the
stampede.  `RetryPolicy.busy_delay_s` backs off from a larger base and
never sleeps less than the server's ``retry_after_ms`` hint; the
regression half of this module drives a real ``max_queries``-saturated
server (both front-ends, via ``make_server``) and asserts the shed
client re-enters on that schedule and still completes.
"""

import socket
import time

import pytest

from repro.crypto.rng import DeterministicRandom
from repro.datastore.workload import WorkloadGenerator
from repro.net.transport import RetryPolicy, SocketTransport
from repro.spfe.session import ClientSession, run_resilient
from repro.obs.registry import MetricsRegistry

KEY_BITS = 128
N = 12
READ_TIMEOUT = 5.0


@pytest.fixture(scope="module")
def workload():
    generator = WorkloadGenerator("busy-retry")
    database = generator.database(N, value_bits=16)
    selection = generator.random_selection(N, 5)
    return database, selection


class TestBusySchedule:
    def test_busy_schedule_is_separate_and_slower(self):
        policy = RetryPolicy(
            base_delay_s=0.05, busy_base_delay_s=0.4, jitter=0.0
        )
        rng = DeterministicRandom("busy")
        assert policy.delay_s(1, rng) == pytest.approx(0.05)
        assert policy.busy_delay_s(1, rng) == pytest.approx(0.4)
        assert RetryPolicy().busy_base_delay_s > RetryPolicy().base_delay_s

    def test_busy_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            busy_base_delay_s=0.2,
            busy_multiplier=2.0,
            busy_max_delay_s=0.5,
            jitter=0.0,
        )
        rng = DeterministicRandom("busy")
        assert policy.busy_delay_s(1, rng) == pytest.approx(0.2)
        assert policy.busy_delay_s(2, rng) == pytest.approx(0.4)
        assert policy.busy_delay_s(3, rng) == pytest.approx(0.5)  # capped
        with pytest.raises(ValueError):
            policy.busy_delay_s(0, rng)

    def test_server_hint_floors_the_delay(self):
        policy = RetryPolicy(busy_base_delay_s=0.01, jitter=0.0)
        rng = DeterministicRandom("busy")
        # the server asked for 250 ms; the client never undercuts it
        assert policy.busy_delay_s(1, rng, hint_ms=250) == pytest.approx(0.25)
        # a small hint leaves the schedule in charge
        assert policy.busy_delay_s(3, rng, hint_ms=1) == pytest.approx(0.04)

    def test_jitter_stretches_but_respects_the_floor(self):
        policy = RetryPolicy(busy_base_delay_s=0.1, jitter=1.0)
        rng = DeterministicRandom("busy-jitter")
        for retry_index in range(1, 6):
            delay = policy.busy_delay_s(retry_index, rng, hint_ms=90)
            assert delay >= 0.09

    def test_invalid_busy_parameters_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(busy_base_delay_s=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(busy_multiplier=0.5)


class TestBusyRegression:
    def test_shed_client_retries_on_busy_schedule_and_completes(
        self, workload, make_server
    ):
        """One budget slot, held by a stalled connection: the second
        client is shed with BUSY, sleeps the busy schedule (floored at
        the server's hint), and wins the freed slot on retry."""
        database, selection = workload
        metrics = MetricsRegistry()
        server = make_server(
            database,
            max_sessions=2,
            max_queries=1,
            busy_retry_ms=40,
            read_timeout=2.0,
        ).start()
        holder = None
        try:
            # Occupy the single budget slot with a connection that
            # says HELLO and then stalls.
            holder = socket.create_connection(("127.0.0.1", server.port))
            probe = ClientSession(
                selection,
                key_bits=KEY_BITS,
                chunk_size=4,
                rng=DeterministicRandom("busy-holder"),
            )
            holder.sendall(next(iter(probe.initial_bytes())))
            deadline = time.monotonic() + READ_TIMEOUT
            while time.monotonic() < deadline:
                if server.stats.get("connections_accepted") >= 1:
                    break
                time.sleep(0.02)
            time.sleep(0.15)  # let the worker admit the holder

            slept = []

            def sleep_and_free(delay):
                slept.append(delay)
                # the stalled client gives up: its slot is released as
                # a drop, *not* consumed from the query budget
                holder.close()
                deadline = time.monotonic() + READ_TIMEOUT
                while time.monotonic() < deadline:
                    if server.stats.get("sessions_dropped") >= 1:
                        break
                    time.sleep(0.02)

            client = ClientSession(
                selection,
                key_bits=KEY_BITS,
                chunk_size=4,
                rng=DeterministicRandom("busy-client"),
            )
            policy = RetryPolicy(
                max_attempts=6,
                base_delay_s=0.01,
                busy_base_delay_s=0.02,
                jitter=0.0,
            )
            value = run_resilient(
                client,
                lambda: SocketTransport.connect(
                    "127.0.0.1",
                    server.port,
                    connect_timeout=READ_TIMEOUT,
                    read_timeout=READ_TIMEOUT,
                ),
                policy=policy,
                sleep=sleep_and_free,
                metrics=metrics,
            )
            assert value == database.select_sum(selection)
            # the first attempt was shed: the recorded sleep is the busy
            # schedule floored at the server's 40 ms hint, not the 20 ms
            # busy base and not the 10 ms crash base
            assert slept
            assert slept[0] == pytest.approx(0.04)
            counters = {
                snap.name: snap.value
                for snap in metrics.collect()
                if snap.kind == "counter"
            }
            assert counters["repro_retry_busy_total"] >= 1
            assert server.stats.get("sessions_shed") >= 1
        finally:
            if holder is not None:
                try:
                    holder.close()
                except OSError:
                    pass
            server.stop(drain_deadline_s=5.0)
