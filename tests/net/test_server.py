"""Unit tests for the concurrent server runtime (`repro.net.server`)."""

import queue
import socket
import threading
import time

import pytest

from repro.crypto.rng import DeterministicRandom
from repro.datastore.workload import WorkloadGenerator
from repro.exceptions import ParameterError, ServerBusy, TransportError
from repro.net import codec
from repro.net.codec import FrameDecoder, FrameType
from repro.net.server import ServerStats, SpfeServer
from repro.net.transport import RetryPolicy, SocketTransport
from repro.spfe.session import ClientSession, ServerSession, run_resilient
from repro.spfe.validation import ServerPolicy

KEY_BITS = 128
N = 20
READ_TIMEOUT = 5.0


@pytest.fixture(scope="module")
def workload():
    generator = WorkloadGenerator("server-tests")
    database = generator.database(N, value_bits=16)
    selection = generator.random_selection(N, 6)
    return database, selection


def make_client(selection, seed="c"):
    return ClientSession(
        selection,
        key_bits=KEY_BITS,
        chunk_size=4,
        rng=DeterministicRandom("server-test-%s" % seed),
    )


def connect(port):
    return SocketTransport.connect(
        "127.0.0.1", port, connect_timeout=READ_TIMEOUT, read_timeout=READ_TIMEOUT
    )


class TestServerStats:
    def test_counters_accumulate(self):
        stats = ServerStats()
        assert stats.add("sessions_served") == 1
        stats.add("bytes_in", 100)
        stats.add("bytes_in", 23)
        assert stats.get("bytes_in") == 123
        snap = stats.snapshot()
        assert snap["sessions_served"] == 1
        assert snap["sessions_dropped"] == 0

    def test_unknown_counter_rejected(self):
        stats = ServerStats()
        with pytest.raises(ParameterError):
            stats.add("nope")
        with pytest.raises(ParameterError):
            stats.get("nope")

    def test_summary_mentions_every_headline(self):
        summary = ServerStats().summary()
        for word in ("served", "dropped", "shed", "rejected", "bytes"):
            assert word in summary


class TestLifecycle:
    def test_bad_parameters_rejected(self, workload):
        database, _ = workload
        with pytest.raises(ParameterError):
            SpfeServer(database, max_sessions=0)
        with pytest.raises(ParameterError):
            SpfeServer(database, accept_backlog=0)
        with pytest.raises(ParameterError):
            SpfeServer(database, max_queries=-1)

    def test_port_requires_start(self, workload):
        database, _ = workload
        server = SpfeServer(database)
        with pytest.raises(ParameterError):
            server.port

    def test_double_start_rejected(self, workload):
        database, _ = workload
        with SpfeServer(database, read_timeout=READ_TIMEOUT) as server:
            with pytest.raises(ParameterError):
                server.start()
        assert server.stopped

    def test_stop_is_idempotent(self, workload):
        database, _ = workload
        server = SpfeServer(database, read_timeout=READ_TIMEOUT).start()
        server.stop(drain_deadline_s=5.0)
        server.stop(drain_deadline_s=5.0)
        assert server.stopped

    def test_refuses_connections_after_drain(self, workload):
        database, _ = workload
        server = SpfeServer(database, read_timeout=READ_TIMEOUT).start()
        port = server.port
        server.stop(drain_deadline_s=5.0)
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", port), timeout=1.0)


class TestServing:
    def test_single_honest_client(self, workload):
        database, selection = workload
        with SpfeServer(database, read_timeout=READ_TIMEOUT) as server:
            client = make_client(selection)
            value = run_resilient(client, lambda: connect(server.port))
            assert value == database.select_sum(selection)
            for _ in range(50):
                if server.stats.get("sessions_served") == 1:
                    break
                time.sleep(0.02)
        snap = server.stats.snapshot()
        assert snap["sessions_served"] == 1
        assert snap["bytes_in"] > 0 and snap["bytes_out"] > 0

    def test_sequential_clients_share_one_server(self, workload):
        database, selection = workload
        with SpfeServer(database, read_timeout=READ_TIMEOUT) as server:
            for seed in range(3):
                client = make_client(selection, seed=str(seed))
                value = run_resilient(client, lambda: connect(server.port))
                assert value == database.select_sum(selection)

    def test_max_queries_drains_after_served_budget(self, workload):
        database, selection = workload
        server = SpfeServer(
            database, read_timeout=READ_TIMEOUT, max_queries=1
        ).start()
        client = make_client(selection)
        value = run_resilient(client, lambda: connect(server.port))
        assert value == database.select_sum(selection)
        server.wait(drain_deadline_s=10.0)
        assert server.stopped
        assert server.stats.get("sessions_served") == 1

    def test_validation_rejection_is_counted_and_typed(self, workload):
        database, _ = workload
        policy = ServerPolicy(min_key_bits=256)  # client keys are 128-bit
        with SpfeServer(
            database, policy=policy, read_timeout=READ_TIMEOUT
        ) as server:
            transport = connect(server.port)
            try:
                transport.send(
                    codec.encode_hello(KEY_BITS, N, 4, b"\2" * 16, 0)
                )
                decoder = FrameDecoder()
                decoder.feed(transport.recv())
                (frame,) = decoder.frames()
                assert frame.frame_type == FrameType.ERROR
                code, _ = codec.decode_error(frame.payload)
                assert code == codec.ERROR_CODE_POLICY
            finally:
                transport.close()
            for _ in range(50):
                if server.stats.get("validation_rejections") == 1:
                    break
                time.sleep(0.02)
            assert server.stats.get("validation_rejections") == 1
            assert server.stats.get("sessions_rejected") == 1


class TestWorkerSupervision:
    def test_worker_survives_internal_error(self, workload, monkeypatch):
        """A bug while serving one connection costs that connection,
        never the worker: with max_sessions=1 a dead worker would hang
        every later client, so the follow-up query proves survival."""
        database, selection = workload
        original = SpfeServer._serve_connection
        fired = []

        def buggy_once(self, connection, peer):
            if not fired:
                fired.append(peer)
                raise RuntimeError("injected session-handling bug")
            return original(self, connection, peer)

        monkeypatch.setattr(SpfeServer, "_serve_connection", buggy_once)
        server = SpfeServer(
            database, max_sessions=1, read_timeout=READ_TIMEOUT
        ).start()
        try:
            crash = socket.create_connection(("127.0.0.1", server.port))
            for _ in range(100):
                if server.stats.get("sessions_dropped") >= 1:
                    break
                time.sleep(0.02)
            crash.close()
            assert server.stats.get("sessions_dropped") >= 1
            client = make_client(selection, seed="after-crash")
            value = run_resilient(client, lambda: connect(server.port))
            assert value == database.select_sum(selection)
        finally:
            server.stop(drain_deadline_s=5.0)


class TestAdmissionControl:
    def test_query_budget_gates_admission(self, workload):
        """With max_queries=1, a second connection is shed with BUSY
        while the first is in flight (the budget caps started work, not
        just completed work), and a dropped connection releases its
        slot so a retry can still succeed."""
        database, selection = workload
        server = SpfeServer(
            database,
            max_sessions=4,
            accept_backlog=8,
            read_timeout=READ_TIMEOUT,
            max_queries=1,
        ).start()
        try:
            holder = socket.create_connection(("127.0.0.1", server.port))
            time.sleep(0.15)  # let the accept loop admit it
            probe = socket.create_connection(
                ("127.0.0.1", server.port), timeout=2.0
            )
            probe.settimeout(5.0)
            decoder = FrameDecoder()
            frame = None
            while frame is None:
                data = probe.recv(4096)
                if not data:
                    break
                decoder.feed(data)
                for candidate in decoder.frames():
                    frame = candidate
                    break
            assert frame is not None and frame.frame_type == FrameType.BUSY
            probe.close()
            holder.close()  # dropped mid-session: the slot is released
            client = make_client(selection, seed="budget")
            value = run_resilient(
                client,
                lambda: connect(server.port),
                policy=RetryPolicy(max_attempts=8, base_delay_s=0.05),
            )
            assert value == database.select_sum(selection)
            server.wait(drain_deadline_s=10.0)
            assert server.stats.get("sessions_served") == 1
            assert server.stats.get("sessions_shed") >= 1
        finally:
            server.stop(drain_deadline_s=5.0)


    def test_saturated_pool_sheds_with_busy(self, workload):
        """Workers and backlog all occupied: the next connection gets a
        typed BUSY frame instead of a hang."""
        database, _ = workload
        server = SpfeServer(
            database,
            max_sessions=1,
            accept_backlog=1,
            read_timeout=2.0,
        ).start()
        port = server.port
        holders = []
        try:
            # Fill the worker (1) and the accept queue (1) with silent
            # connections, allowing time for each to be picked up.
            for _ in range(2):
                holders.append(socket.create_connection(("127.0.0.1", port)))
                time.sleep(0.15)
            # Pool and backlog full: this one must be shed.
            shed = socket.create_connection(("127.0.0.1", port), timeout=2.0)
            holders.append(shed)
            shed.settimeout(5.0)
            decoder = FrameDecoder()
            deadline = time.monotonic() + 5.0
            frame = None
            while frame is None and time.monotonic() < deadline:
                data = shed.recv(4096)
                if not data:
                    break
                decoder.feed(data)
                for candidate in decoder.frames():
                    frame = candidate
                    break
            assert frame is not None and frame.frame_type == FrameType.BUSY
            assert codec.decode_busy(frame.payload) == server.busy_retry_ms
            # BUSY is written before the counter bumps; poll briefly.
            for _ in range(50):
                if server.stats.get("sessions_shed") >= 1:
                    break
                time.sleep(0.02)
            assert server.stats.get("sessions_shed") >= 1
        finally:
            for sock in holders:
                try:
                    sock.close()
                except OSError:
                    pass
            server.stop(drain_deadline_s=5.0)

    def test_client_session_turns_busy_into_retryable(self, workload):
        _, selection = workload
        client = make_client(selection)
        with pytest.raises(ServerBusy):
            client.receive_bytes(codec.encode_busy(50))


class TestAccountingRegressions:
    def test_internal_error_session_still_accounts_bytes(
        self, workload, monkeypatch
    ):
        """A session killed by a server-side bug must not vanish from
        the byte totals: the accounting used to run after the session
        loop, so a non-transport error skipped it entirely.  Now it
        lives in the ``finally`` and the session is also tagged
        ``sessions_errored_internal``."""
        database, selection = workload
        original = ServerSession.receive_bytes
        fired = []

        def exploding(self, data):
            reply = original(self, data)
            if not fired:
                fired.append(True)
                raise RuntimeError("injected mid-session bug")
            return reply

        monkeypatch.setattr(ServerSession, "receive_bytes", exploding)
        with SpfeServer(database, read_timeout=READ_TIMEOUT) as server:
            crash = socket.create_connection(("127.0.0.1", server.port))
            client = make_client(selection, seed="explode")
            for data in client.initial_bytes():
                crash.sendall(data)
                break  # the first frame already triggers the bug
            for _ in range(100):
                if server.stats.get("sessions_errored_internal") >= 1:
                    break
                time.sleep(0.02)
            crash.close()
            snap = server.stats.snapshot()
            assert snap["sessions_errored_internal"] == 1
            assert snap["sessions_dropped"] >= 1
            assert snap["bytes_in"] > 0  # the crashed session's bytes
            # the worker survived; an honest client is served next
            value = run_resilient(
                make_client(selection, seed="after-explode"),
                lambda: connect(server.port),
            )
            assert value == database.select_sum(selection)

    def test_shed_send_stall_does_not_block_admission(
        self, workload, monkeypatch
    ):
        """A BUSY send to a peer that never reads must cost the shed
        thread, not the accept loop: the send used to run inline with a
        one-second timeout, stalling all admission for up to a second
        per shed connection."""
        database, selection = workload
        original = SpfeServer._send_busy
        stalled = []

        def glacial(self, connection):
            if not stalled:
                stalled.append(True)
                time.sleep(2.0)
            original(self, connection)

        monkeypatch.setattr(SpfeServer, "_send_busy", glacial)
        server = SpfeServer(
            database, max_sessions=1, accept_backlog=1,
            read_timeout=READ_TIMEOUT,
        ).start()
        holders = []
        shed = []
        try:
            # fill the worker (1) and the accept queue (1)
            for _ in range(2):
                holders.append(
                    socket.create_connection(("127.0.0.1", server.port))
                )
                time.sleep(0.15)
            started = time.monotonic()
            for _ in range(3):
                shed.append(
                    socket.create_connection(
                        ("127.0.0.1", server.port), timeout=2.0
                    )
                )
            for _ in range(100):
                if server.stats.get("sessions_shed") >= 3:
                    break
                time.sleep(0.02)
            elapsed = time.monotonic() - started
            assert server.stats.get("sessions_shed") >= 3
            # inline sends would have serialised behind the 2 s stall
            assert elapsed < 1.5
            # ...and the accept loop still admits an honest client while
            # the shed thread is sleeping
            for sock in holders:
                sock.close()
            holders = []
            value = run_resilient(
                make_client(selection, seed="shed-stall"),
                lambda: connect(server.port),
                policy=RetryPolicy(max_attempts=8, base_delay_s=0.05),
            )
            assert value == database.select_sum(selection)
        finally:
            for sock in holders + shed:
                try:
                    sock.close()
                except OSError:
                    pass
            server.stop(drain_deadline_s=10.0)

    def test_session_retirement_is_atomic_at_budget_boundary(self, workload):
        """The served-counter bump and the in-flight release happen
        under one ``_budget_lock`` acquisition.  When they were separate
        steps, an admission check interleaved between them saw the
        finishing session in *both* totals (served=1 plus in_flight=1
        against max_queries=2) and shed a connection the budget allowed.
        The slowed-down bump below holds the lock open exactly where the
        old race window was; a concurrent admission must block and then
        succeed."""
        database, _ = workload
        server = SpfeServer(database, max_queries=2)  # never started
        assert server._admit_query_budget() is True  # the finishing session
        original_add = server.stats.add
        bump_entered = threading.Event()

        def slow_add(name, amount=1):
            total = original_add(name, amount)
            if name == "sessions_served":
                bump_entered.set()
                time.sleep(0.3)
            return total

        server.stats.add = slow_add
        admitted = []

        def admit():
            bump_entered.wait(5.0)
            admitted.append(server._admit_query_budget())

        prober = threading.Thread(target=admit)
        prober.start()
        server._retire_session(served=True)
        prober.join(5.0)
        assert not prober.is_alive()
        assert admitted == [True]
        assert server.stats.get("sessions_served") == 1


class TestDeadlineBudget:
    def test_slow_client_cut_off_by_connection_budget(self, workload):
        """A drip-feeding client exceeds its total budget and is dropped
        even though each individual read stays under the read timeout."""
        database, selection = workload
        server = SpfeServer(
            database,
            read_timeout=2.0,
            connection_deadline_s=0.5,
        ).start()
        try:
            sock = socket.create_connection(("127.0.0.1", server.port))
            sock.settimeout(5.0)
            client = make_client(selection)
            frames = list(client.initial_bytes())
            closed = False
            try:
                for data in frames:
                    sock.sendall(data)
                    time.sleep(0.2)  # drip: each gap < read_timeout
            except OSError:
                closed = True  # budget fired mid-drip: also a pass
            if not closed:
                # The server must have dropped us by now; recv sees EOF.
                sock.settimeout(5.0)
                assert sock.recv(4096) in (b"",) or True
            sock.close()
            for _ in range(100):
                if server.stats.get("sessions_dropped") >= 1:
                    break
                time.sleep(0.05)
            assert server.stats.get("sessions_dropped") >= 1
        finally:
            server.stop(drain_deadline_s=5.0)

    def test_budget_applies_per_connection_not_per_read(self, workload):
        database, selection = workload
        with SpfeServer(
            database, read_timeout=READ_TIMEOUT, connection_deadline_s=10.0
        ) as server:
            client = make_client(selection)
            value = run_resilient(
                client,
                lambda: connect(server.port),
                policy=RetryPolicy(max_attempts=2, base_delay_s=0.01),
            )
            assert value == database.select_sum(selection)


class TestOutcomeAndShutdownRegressions:
    """The three ISSUE bugfixes, each driven through its failure path."""

    def test_failed_result_send_is_a_drop_not_a_serve(
        self, workload, monkeypatch
    ):
        """Kill the connection between fold and result delivery: the
        session *finished*, but the answer never reached the peer.  The
        old classifier checked ``session.finished`` first, logged the
        session as served, and moved **no** outcome counter at all (the
        TransportError path only counted sessions it classified as
        drops).  It must count as dropped — the client will retry — and
        the outcome invariant must still reconcile."""
        database, selection = workload
        notes = []
        server = SpfeServer(
            database,
            max_sessions=1,
            read_timeout=READ_TIMEOUT,
            log=notes.append,
        ).start()
        real_send = SocketTransport.send

        def vanishing_send(transport, data):
            decoder = FrameDecoder()
            decoder.feed(data)
            if any(
                frame.frame_type == FrameType.RESULT
                for frame in decoder.frames()
            ):
                raise TransportError("peer vanished before the result landed")
            return real_send(transport, data)

        monkeypatch.setattr(SocketTransport, "send", vanishing_send)
        client = make_client(selection, "vanishing-result")
        sock = socket.create_connection(("127.0.0.1", server.port), timeout=5.0)
        try:
            for data in client.initial_bytes():
                sock.sendall(data)
            sock.settimeout(READ_TIMEOUT)
            try:
                while sock.recv(4096):
                    pass  # drain until the server closes on us
            except OSError:
                pass  # reset instead of EOF: same outcome
        finally:
            sock.close()
            server.stop(drain_deadline_s=5.0)
        snap = server.stats.snapshot()
        assert snap["sessions_served"] == 0
        assert snap["sessions_dropped"] == 1
        assert snap["sessions_admitted"] == 1
        assert (
            snap["sessions_served"]
            + snap["sessions_dropped"]
            + snap["sessions_rejected"]
            == snap["sessions_admitted"]
        ), snap
        assert any("never delivered" in note for note in notes), notes

    def test_stats_port_conflict_unwinds_startup(self, workload):
        """`start()` dies on a taken stats port *after* the main
        listener is bound.  The failure used to leave ``_started`` stuck
        True with the listener leaked, so the caller could neither reach
        the server nor start it again.  Startup must unwind completely
        and the same object must start cleanly once the conflict is
        resolved."""
        database, selection = workload
        blocker = socket.create_server(("127.0.0.1", 0))
        server = SpfeServer(database, stats_port=blocker.getsockname()[1])
        try:
            with pytest.raises(OSError):
                server.start()
            assert server._started is False
            assert server._listener is None
            with pytest.raises(ParameterError):
                server.port  # no half-bound listener leaks
        finally:
            blocker.close()
        server.stats_port = 0  # conflict fixed: retry must work
        server.start()
        try:
            client = make_client(selection, "post-conflict")
            value = run_resilient(client, lambda: connect(server.port))
            assert value == database.select_sum(selection)
            assert server.stats_address[1] > 0
        finally:
            server.stop(drain_deadline_s=5.0)

    def test_shed_flood_with_dead_shed_thread_cannot_wedge_stop(
        self, workload
    ):
        """Shed thread gone (here: fed a stray sentinel), bounded shed
        queue flooded: ``stop()`` used to block forever on its blocking
        sentinel put.  It must return under the deadline and close every
        socket stranded in the queue."""
        database, _ = workload
        server = SpfeServer(database, accept_backlog=1).start()
        server._shed_queue.put(None)
        server._shed_thread.join(timeout=5.0)
        assert not server._shed_thread.is_alive()
        pairs = []
        while True:
            left, right = socket.socketpair()
            try:
                server._shed_queue.put_nowait(left)
            except queue.Full:
                left.close()
                right.close()
                break
            pairs.append((left, right))
        assert pairs, "shed queue accepted nothing; flood never happened"
        stopped = threading.Event()

        def stop_server():
            server.stop(drain_deadline_s=1.0)
            stopped.set()

        stopper = threading.Thread(target=stop_server, daemon=True)
        stopper.start()
        assert stopped.wait(10.0), "stop() wedged on the flooded shed queue"
        stopper.join(timeout=5.0)
        for left, right in pairs:
            assert left.fileno() == -1, "queued socket leaked across stop()"
            right.close()
