"""Public-API integrity: exports resolve, and everything is documented.

Two repository-wide invariants:

* every name in every ``__all__`` actually exists in its module;
* every public module, class, and function in :mod:`repro` carries a
  docstring (documentation is a deliverable, so its absence is a test
  failure, not a style nit).
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = sorted(
    name
    for _, name, __ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.startswith("repro._")
)


@pytest.mark.parametrize("module_name", MODULES)
def test_module_imports_and_is_documented(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, "module %s has no docstring" % module_name


@pytest.mark.parametrize("module_name", MODULES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), (
            "%s.__all__ lists %r, which does not exist" % (module_name, name)
        )


@pytest.mark.parametrize("module_name", MODULES)
def test_public_callables_documented(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", [])
    for name in exported:
        obj = getattr(module, name)
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if obj.__module__ != module_name:
            continue  # re-export; documented at its home
        assert obj.__doc__, "%s.%s has no docstring" % (module_name, name)
        if inspect.isclass(obj):
            for attr_name, attr in vars(obj).items():
                if attr_name.startswith("_"):
                    continue
                if inspect.isfunction(attr):
                    assert attr.__doc__, (
                        "%s.%s.%s has no docstring"
                        % (module_name, name, attr_name)
                    )


def test_top_level_api_surface():
    """The README's advertised entry points exist on the package root."""
    for name in (
        "ServerDatabase",
        "WorkloadGenerator",
        "ExecutionContext",
        "SelectedSumProtocol",
        "PrivateStatisticsClient",
        "EncryptedNumber",
        "generate_keypair",
        "private_selected_sum",
        "links",
        "profiles",
        "__version__",
    ):
        assert hasattr(repro, name), "repro.%s missing" % name


def test_version_is_pep440ish():
    parts = repro.__version__.split(".")
    assert len(parts) >= 2
    assert all(part.isdigit() for part in parts)
