"""Public-API integrity: exports resolve, and everything is documented.

Two repository-wide invariants:

* every name in every ``__all__`` actually exists in its module;
* every public module, class, and function in :mod:`repro` carries a
  docstring (documentation is a deliverable, so its absence is a test
  failure, not a style nit).
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = sorted(
    name
    for _, name, __ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.startswith("repro._")
)


@pytest.mark.parametrize("module_name", MODULES)
def test_module_imports_and_is_documented(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, "module %s has no docstring" % module_name


@pytest.mark.parametrize("module_name", MODULES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), (
            "%s.__all__ lists %r, which does not exist" % (module_name, name)
        )


@pytest.mark.parametrize("module_name", MODULES)
def test_public_callables_documented(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", [])
    for name in exported:
        obj = getattr(module, name)
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if obj.__module__ != module_name:
            continue  # re-export; documented at its home
        assert obj.__doc__, "%s.%s has no docstring" % (module_name, name)
        if inspect.isclass(obj):
            for attr_name, attr in vars(obj).items():
                if attr_name.startswith("_"):
                    continue
                if inspect.isfunction(attr):
                    assert attr.__doc__, (
                        "%s.%s.%s has no docstring"
                        % (module_name, name, attr_name)
                    )


def test_top_level_api_surface():
    """The README's advertised entry points exist on the package root."""
    for name in (
        "ServerDatabase",
        "WorkloadGenerator",
        "ExecutionContext",
        "SelectedSumProtocol",
        "PrivateStatisticsClient",
        "EncryptedNumber",
        "generate_keypair",
        "private_selected_sum",
        "links",
        "profiles",
        "__version__",
    ):
        assert hasattr(repro, name), "repro.%s missing" % name


class TestExceptionHierarchy:
    """Every public exception is exported, rooted at ReproError, and
    catchable by the single ``except ReproError`` contract."""

    def _exception_classes(self):
        import repro.exceptions as exceptions

        return {
            name: obj
            for name, obj in vars(exceptions).items()
            if inspect.isclass(obj) and issubclass(obj, BaseException)
        }

    def test_all_matches_defined_exceptions_exactly(self):
        import repro.exceptions as exceptions

        assert set(exceptions.__all__) == set(self._exception_classes())

    def test_every_exception_derives_from_repro_error(self):
        from repro.exceptions import ReproError

        for name, obj in self._exception_classes().items():
            assert issubclass(obj, ReproError), (
                "%s does not derive from ReproError" % name
            )
            assert obj.__doc__, "%s has no docstring" % name

    def test_transport_errors_are_present_and_nested(self):
        from repro import exceptions

        assert issubclass(exceptions.TransportTimeout, exceptions.TransportError)
        assert issubclass(exceptions.RetryExhausted, exceptions.TransportError)
        assert issubclass(exceptions.SessionResumeError, exceptions.ProtocolError)
        for name in ("TransportError", "TransportTimeout", "RetryExhausted",
                     "SessionResumeError"):
            assert name in exceptions.__all__

    def test_one_except_clause_catches_everything(self):
        from repro.exceptions import ReproError, TransportTimeout

        try:
            raise TransportTimeout("deadline passed")
        except ReproError as exc:
            assert "deadline" in str(exc)


def test_version_is_pep440ish():
    parts = repro.__version__.split(".")
    assert len(parts) >= 2
    assert all(part.isdigit() for part in parts)
