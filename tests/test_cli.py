"""Tests for the command-line interface (driven in-process)."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])


class TestSum:
    def test_random_database(self):
        code, output = run_cli(
            "sum", "--random", "200", "--select", "0,5,9", "--seed", "clitest"
        )
        assert code == 0
        assert "sum of 3 selected elements" in output
        assert "modelled 2004 online time" in output

    def test_db_file(self, tmp_path):
        path = tmp_path / "db.txt"
        path.write_text("10\n20\n30\n40\n")
        code, output = run_cli("sum", "--db", str(path), "--select", "1,3")
        assert code == 0
        assert "sum of 2 selected elements: 60" in output

    def test_every_protocol(self, tmp_path):
        path = tmp_path / "db.txt"
        path.write_text("\n".join(str(i) for i in range(1, 13)))
        for protocol in ("plain", "batched", "preprocessed", "combined",
                         "multiclient"):
            code, output = run_cli(
                "sum", "--db", str(path), "--select", "0,11",
                "--protocol", protocol,
            )
            assert code == 0, (protocol, output)
            assert ": 13" in output  # 1 + 12

    def test_real_mode(self, tmp_path):
        path = tmp_path / "db.txt"
        path.write_text("7\n8\n9\n")
        code, output = run_cli(
            "sum", "--db", str(path), "--select", "0,2",
            "--real", "--key-bits", "128",
        )
        assert code == 0
        assert ": 16" in output
        assert "measured online time" in output

    def test_missing_database(self):
        code, output = run_cli("sum", "--select", "1")
        assert code == 2
        assert "error" in output

    def test_both_sources_rejected(self, tmp_path):
        path = tmp_path / "db.txt"
        path.write_text("1\n")
        code, output = run_cli(
            "sum", "--db", str(path), "--random", "5", "--select", "0"
        )
        assert code == 2

    def test_missing_file(self):
        code, output = run_cli("sum", "--db", "/nonexistent", "--select", "0")
        assert code == 2

    def test_bad_index(self):
        code, output = run_cli("sum", "--random", "10", "--select", "99")
        assert code == 2


class TestEstimate:
    def test_plain(self):
        code, output = run_cli("estimate", "--n", "100000")
        assert code == 0
        assert "online runtime:" in output
        # The paper's Figure 2 headline, predicted analytically.
        minutes = float(output.split("online runtime:")[1].split("min")[0])
        assert 18 < minutes < 23

    def test_all_protocols(self):
        for protocol in ("plain", "batched", "preprocessed", "combined",
                         "multiclient"):
            code, output = run_cli(
                "estimate", "--n", "50000", "--protocol", protocol
            )
            assert code == 0, (protocol, output)
            assert protocol in output

    def test_environments(self):
        short = run_cli("estimate", "--n", "50000", "--env", "short")[1]
        long_ = run_cli("estimate", "--n", "50000", "--env", "long")[1]

        def comm(text):
            return float(text.split("communication")[1].split("min")[0])

        assert comm(long_) > 10 * comm(short)


class TestKeygen:
    def test_deterministic(self):
        a = run_cli("keygen", "--bits", "64", "--seed", "k")[1]
        b = run_cli("keygen", "--bits", "64", "--seed", "k")[1]
        assert a == b
        assert "n = " in a

    def test_key_is_consistent(self):
        output = run_cli("keygen", "--bits", "64", "--seed", "c")[1]
        lines = dict(
            line.split(" = ") for line in output.splitlines() if " = " in line
        )
        assert int(lines["p"]) * int(lines["q"]) == int(lines["n"])


class TestFigures:
    def test_quick_figures(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_QUICK", "1")
        # Restrict to a tiny sweep via the env var the runners honour.
        code, output = run_cli("figures", "--quick", "--out", str(tmp_path))
        assert code == 0
        assert "figure2" in output
        assert (tmp_path / "figure2.txt").exists()
        assert (tmp_path / "figure9.txt").exists()


class TestPlan:
    def test_default_plan(self):
        code, output = run_cli("plan", "--n", "100000")
        assert code == 0
        assert "1. combined" in output

    def test_constrained_plan(self):
        code, output = run_cli(
            "plan", "--n", "100000", "--no-preprocessing", "--clients", "3"
        )
        assert code == 0
        assert "1. multiclient" in output
        assert "excluded" in output

    def test_budgets(self):
        code, output = run_cli(
            "plan", "--n", "100000", "--max-storage-mb", "5"
        )
        assert code == 0
        assert "pool needs" in output


class TestServeQuery:
    def test_tcp_round_trip(self, tmp_path):
        """serve and query over a real TCP socket, both via the CLI."""
        import io
        import re
        import socket
        import threading

        path = tmp_path / "db.txt"
        path.write_text("\n".join(str((i * 37) % 1000) for i in range(50)))

        server_out = io.StringIO()
        # Bind first so the port is known before the client connects.
        listener_probe = socket.socket()
        listener_probe.bind(("127.0.0.1", 0))
        port = listener_probe.getsockname()[1]
        listener_probe.close()

        server_thread = threading.Thread(
            target=main,
            args=(
                ["serve", "--db", str(path), "--port", str(port),
                 "--queries", "1"],
                server_out,
            ),
            daemon=True,
        )
        server_thread.start()
        # Wait until the server announces it is listening.
        for _ in range(100):
            if "serving" in server_out.getvalue():
                break
            import time

            time.sleep(0.02)

        code, output = run_cli(
            "query", "--port", str(port), "--n", "50",
            "--select", "0,10,20", "--key-bits", "128",
        )
        server_thread.join(timeout=10)
        assert code == 0, output
        values = [(i * 37) % 1000 for i in range(50)]
        expected = values[0] + values[10] + values[20]
        assert "private sum of 3 elements: %d" % expected in output
        assert "served" in server_out.getvalue()

    def test_serve_drops_silent_peer_without_spending_budget(self, tmp_path):
        """A client that connects and says nothing hits the read
        deadline and is dropped — and the drop does NOT consume the
        --queries budget: an honest query afterwards still completes."""
        import io
        import socket
        import threading
        import time

        path = tmp_path / "db.txt"
        path.write_text("\n".join(str(i) for i in range(10)))

        server_out = io.StringIO()
        listener_probe = socket.socket()
        listener_probe.bind(("127.0.0.1", 0))
        port = listener_probe.getsockname()[1]
        listener_probe.close()

        server_thread = threading.Thread(
            target=main,
            args=(
                ["serve", "--db", str(path), "--port", str(port),
                 "--queries", "1", "--timeout", "0.3"],
                server_out,
            ),
            daemon=True,
        )
        server_thread.start()
        for _ in range(100):
            if "serving" in server_out.getvalue():
                break
            time.sleep(0.02)

        silent = socket.create_connection(("127.0.0.1", port))
        for _ in range(200):
            if "dropped" in server_out.getvalue():
                break
            time.sleep(0.02)
        silent.close()
        assert "dropped" in server_out.getvalue()
        # The budget is still intact: one honest query completes and
        # only then does the server drain and exit.
        code, output = run_cli(
            "query", "--port", str(port), "--n", "10",
            "--select", "0,3", "--key-bits", "128",
        )
        assert code == 0, output
        server_thread.join(timeout=10)
        assert not server_thread.is_alive()
        out_text = server_out.getvalue()
        assert "served" in out_text
        assert "1 served" in out_text and "1 dropped" in out_text

    def test_query_retries_are_bounded_and_typed(self):
        """With nothing listening, query fails fast with exit code 2
        (RetryExhausted is a ReproError), not a hang or a traceback."""
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        code, output = run_cli(
            "query", "--port", str(port), "--n", "10", "--select", "0",
            "--key-bits", "128", "--timeout", "0.3", "--retries", "1",
        )
        assert code == 2
        assert "error:" in output


class TestCalibrate:
    def test_calibrate_prints_table_and_persists(self, tmp_path):
        state_dir = str(tmp_path / "state")
        code, output = run_cli(
            "calibrate", "--key-bits", "64", "--sizes", "8",
            "--rounds", "1", "--workers", "1", "--state-dir", state_dir,
        )
        assert code == 0
        assert "weighted" in output and "encrypt" in output
        assert "multiexp" in output  # a timings column made it out

        from repro.crypto.calibration import load_profile
        from repro.store import StateStore

        with StateStore.open(state_dir) as store:
            profile = load_profile(store)
        assert profile is not None
        assert len(profile) == 2  # weighted + encrypt at one grid point
        assert profile.best_mode("weighted", 64, 8) is not None

    def test_sum_picks_up_persisted_profile(self, tmp_path):
        state_dir = str(tmp_path / "state")
        code, _ = run_cli(
            "calibrate", "--key-bits", "64", "--sizes", "8",
            "--rounds", "1", "--workers", "1", "--state-dir", state_dir,
        )
        assert code == 0
        code, output = run_cli(
            "sum", "--random", "16", "--select", "1,2", "--real",
            "--key-bits", "64", "--state-dir", state_dir,
        )
        assert code == 0
        assert "calibration profile loaded (2 measured points)" in output
        assert "sum of 2 selected elements" in output

    def test_calibrate_without_state_dir_is_ephemeral(self):
        code, output = run_cli(
            "calibrate", "--key-bits", "64", "--sizes", "8",
            "--rounds", "1", "--workers", "1",
        )
        assert code == 0
        assert "weighted" in output
