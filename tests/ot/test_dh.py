"""Tests for the DDH-based oblivious transfer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.elgamal import SchnorrGroup, _PRECOMPUTED_SAFE_PRIMES
from repro.crypto.rng import DeterministicRandom
from repro.exceptions import OTError
from repro.ot.dh import DHOTReceiver, DHOTSender, dh_oblivious_transfer


SMALL_GROUP = SchnorrGroup(_PRECOMPUTED_SAFE_PRIMES[128])


class TestCorrectness:
    def test_both_choices(self):
        for choice, expected in ((0, 1111), (1, 2222)):
            result = dh_oblivious_transfer(
                1111, 2222, choice, SMALL_GROUP, DeterministicRandom(choice)
            )
            assert result == expected

    def test_large_messages(self):
        m0, m1 = 2**200 + 5, 2**190 + 7
        assert dh_oblivious_transfer(m0, m1, 0, SMALL_GROUP, DeterministicRandom("L")) == m0
        assert dh_oblivious_transfer(m0, m1, 1, SMALL_GROUP, DeterministicRandom("M")) == m1

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2**128), st.integers(0, 2**128), st.integers(0, 1))
    def test_correctness_property(self, m0, m1, choice):
        rng = DeterministicRandom(repr((m0, m1, choice)))
        assert dh_oblivious_transfer(m0, m1, choice, SMALL_GROUP, rng) == (
            m1 if choice else m0
        )


class TestValidation:
    def test_bad_choice(self):
        with pytest.raises(OTError):
            DHOTReceiver(5, SMALL_GROUP)

    def test_negative_messages(self):
        with pytest.raises(OTError):
            DHOTSender(-1, 2, SMALL_GROUP)

    def test_rejects_non_group_elements(self):
        sender = DHOTSender(1, 2, SMALL_GROUP, DeterministicRandom("a"))
        sender.round1()
        with pytest.raises(OTError):
            sender.round2(0)
        receiver = DHOTReceiver(0, SMALL_GROUP, DeterministicRandom("b"))
        with pytest.raises(OTError):
            receiver.round1(SMALL_GROUP.p)  # not in group

    def test_round_order(self):
        with pytest.raises(OTError):
            DHOTSender(1, 2, SMALL_GROUP).round2(4)
        with pytest.raises(OTError):
            DHOTReceiver(0, SMALL_GROUP).round2((1, 2), (3, 4), 16)


class TestStructure:
    def test_receiver_key_is_group_element_either_way(self):
        # pk_0 must be a valid group element regardless of the choice —
        # otherwise the sender could distinguish the choice bit.
        rng = DeterministicRandom("g")
        sender = DHOTSender(7, 9, SMALL_GROUP, rng)
        c = sender.round1()
        for choice in (0, 1):
            pk0 = DHOTReceiver(choice, SMALL_GROUP, DeterministicRandom(choice)).round1(c)
            assert SMALL_GROUP.contains(pk0)

    def test_agreement_with_egl(self):
        """Two independent OT constructions agree on the functionality."""
        from repro.ot.egl import oblivious_transfer

        for choice in (0, 1):
            dh = dh_oblivious_transfer(10, 20, choice, SMALL_GROUP,
                                       DeterministicRandom(choice))
            egl = oblivious_transfer(10, 20, choice, 128,
                                     DeterministicRandom(choice + 2))
            assert dh == egl == (20 if choice else 10)
