"""Tests for the EGL oblivious transfer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.rng import DeterministicRandom
from repro.exceptions import OTError
from repro.ot.egl import OTReceiver, OTSender, oblivious_transfer


class TestCorrectness:
    def test_choice_zero(self):
        assert oblivious_transfer(111, 222, 0, 128, DeterministicRandom("a")) == 111

    def test_choice_one(self):
        assert oblivious_transfer(111, 222, 1, 128, DeterministicRandom("b")) == 222

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2**64), st.integers(0, 2**64), st.integers(0, 1))
    def test_correctness_property(self, m0, m1, choice):
        rng = DeterministicRandom((m0, m1, choice).__repr__())
        result = oblivious_transfer(m0, m1, choice, 160, rng)
        assert result == (m1 if choice else m0)


class TestValidation:
    def test_bad_choice(self):
        with pytest.raises(OTError):
            OTReceiver(2)

    def test_out_of_range_messages(self):
        with pytest.raises(OTError):
            OTSender(2**512, 0, key_bits=128, rng=DeterministicRandom("x"))

    def test_round_order_enforced(self):
        sender = OTSender(1, 2, key_bits=128, rng=DeterministicRandom("x"))
        with pytest.raises(OTError):
            sender.round2(42)
        receiver = OTReceiver(0, DeterministicRandom("y"))
        with pytest.raises(OTError):
            receiver.round2(1, 2)


class TestObliviousness:
    """Structural checks of the hiding directions (not proofs)."""

    def test_receiver_message_same_distribution_shape(self):
        # The blinded value v reveals nothing structural: for both
        # choices it is a uniform-looking element of Z_N.
        rng = DeterministicRandom("shape")
        sender = OTSender(10, 20, key_bits=128, rng=rng)
        public, x0, x1 = sender.round1()
        v0 = OTReceiver(0, DeterministicRandom("r0")).round1(public, x0, x1)
        v1 = OTReceiver(1, DeterministicRandom("r1")).round1(public, x0, x1)
        assert 0 <= v0 < public.n
        assert 0 <= v1 < public.n
        assert v0 != v1  # fresh blinding, no accidental equality

    def test_unchosen_message_is_masked(self):
        # The receiver's view of the unchosen reply is offset by a value
        # it cannot compute (the inverse image of a random element), so
        # the raw reply must differ from the message itself.
        rng = DeterministicRandom("mask")
        sender = OTSender(1234, 5678, key_bits=128, rng=rng)
        public, x0, x1 = sender.round1()
        receiver = OTReceiver(0, rng)
        v = receiver.round1(public, x0, x1)
        reply0, reply1 = sender.round2(v)
        assert receiver.round2(reply0, reply1) == 1234
        assert reply1 != 5678  # the unchosen message never in the clear
