"""Repo-wide fixtures: the server-backend parametrization.

The selected-sum server ships two connection front-ends —
thread-per-connection :class:`~repro.net.server.SpfeServer` and the
event-loop :class:`~repro.net.aio.AsyncSpfeServer` — that share one
accounting core and must pass the same acceptance suites.  Tests that
exercise server behaviour over real sockets take the ``make_server``
fixture and run once per backend.

``REPRO_SERVER_BACKENDS`` (comma-separated) narrows the sweep so a CI
matrix can run one backend per job::

    REPRO_SERVER_BACKENDS=asyncio pytest tests/integration/test_concurrent_server.py
"""

import os

import pytest

from repro.net.aio import AsyncSpfeServer
from repro.net.server import SpfeServer

#: the backends the parametrized server suites sweep over
SERVER_BACKENDS = tuple(
    entry.strip()
    for entry in os.environ.get(
        "REPRO_SERVER_BACKENDS", "threads,asyncio"
    ).split(",")
    if entry.strip()
)

_SERVER_CLASSES = {"threads": SpfeServer, "asyncio": AsyncSpfeServer}


@pytest.fixture(params=SERVER_BACKENDS)
def server_backend(request):
    """The connection front-end under test: 'threads' or 'asyncio'."""
    return request.param


@pytest.fixture
def make_server(server_backend):
    """Construct the parametrized backend's server class.

    Usage: ``server = make_server(database, read_timeout=5.0).start()``.
    The chosen backend name is available as ``make_server.backend`` for
    tests that need to branch (e.g. to pass ``--backend`` to a CLI
    subprocess).
    """

    def _make(database, **kwargs):
        return _SERVER_CLASSES[server_backend](database, **kwargs)

    _make.backend = server_backend
    return _make
