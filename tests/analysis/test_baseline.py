"""Baseline file round-trip: mask existing findings, surface new ones."""

import json
from pathlib import Path

import pytest

from repro.analysis import analyze_paths, load_baseline, write_baseline
from repro.analysis.baseline import BaselineError, fingerprint
from repro.analysis.cli import main

LEAKY = 'def f(p):\n    return f"p={p}"\n'


def _write_module(tmp_path: Path, source: str, name: str = "mod.py") -> Path:
    target = tmp_path / name
    target.write_text(source)
    return target


def _baseline_for(tmp_path: Path, *paths: Path) -> Path:
    report = analyze_paths(list(paths))
    baseline = tmp_path / "baseline.json"
    write_baseline(
        baseline,
        [(f, report.line_text_for(f)) for f in report.findings],
    )
    return baseline


class TestRoundTrip:
    def test_baselined_finding_is_masked(self, tmp_path):
        target = _write_module(tmp_path, LEAKY)
        baseline = _baseline_for(tmp_path, target)
        report = analyze_paths([target], baseline=load_baseline(baseline))
        assert report.clean
        assert len(report.baselined) == 1

    def test_new_finding_still_fails(self, tmp_path):
        target = _write_module(tmp_path, LEAKY)
        baseline = _baseline_for(tmp_path, target)
        target.write_text(LEAKY + '\ndef g(q):\n    return f"q={q}"\n')
        report = analyze_paths([target], baseline=load_baseline(baseline))
        assert not report.clean
        assert len(report.baselined) == 1
        assert [f.rule_id for f in report.findings] == ["SEC001"]
        assert report.findings[0].line == 5

    def test_fingerprint_tracks_line_content_not_number(self, tmp_path):
        target = _write_module(tmp_path, LEAKY)
        baseline = _baseline_for(tmp_path, target)
        # shifting the finding down by two lines keeps it baselined
        target.write_text("# comment\n# comment\n" + LEAKY)
        report = analyze_paths([target], baseline=load_baseline(baseline))
        assert report.clean
        assert len(report.baselined) == 1

    def test_duplicate_lines_mask_per_occurrence(self, tmp_path):
        body = 'def f(p):\n    return f"p={p}"\n\ndef g(p):\n    return f"p={p}"\n'
        target = _write_module(tmp_path, body)
        report = analyze_paths([target])
        assert len(report.findings) == 2
        # baseline only ONE of the two identical-text findings
        baseline = tmp_path / "baseline.json"
        write_baseline(
            baseline,
            [(report.findings[0], report.line_text_for(report.findings[0]))],
        )
        masked = analyze_paths([target], baseline=load_baseline(baseline))
        assert len(masked.baselined) == 1
        assert len(masked.findings) == 1


class TestFingerprint:
    def test_whitespace_normalized(self, tmp_path):
        target = _write_module(tmp_path, LEAKY)
        finding = analyze_paths([target]).findings[0]
        assert fingerprint(finding, '    return f"p={p}"') == fingerprint(
            finding, 'return   f"p={p}"'
        )

    def test_distinct_rules_get_distinct_prints(self, tmp_path):
        target = _write_module(tmp_path, LEAKY)
        finding = analyze_paths([target]).findings[0]
        other = finding.__class__(
            path=finding.path,
            line=finding.line,
            col=finding.col,
            rule_id="SEC003",
            message=finding.message,
        )
        assert fingerprint(finding, "x") != fingerprint(other, "x")


class TestLoadErrors:
    def test_rejects_non_json(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text("not json")
        with pytest.raises(BaselineError):
            load_baseline(bad)

    def test_rejects_wrong_version(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(BaselineError):
            load_baseline(bad)

    def test_rejects_wrong_shape(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps({"version": 1, "entries": "oops"}))
        with pytest.raises(BaselineError):
            load_baseline(bad)


class TestCliFlow:
    def test_update_baseline_then_clean(self, tmp_path, capsys):
        target = _write_module(tmp_path, LEAKY)
        baseline = tmp_path / "baseline.json"
        assert main([str(target), "--baseline", str(baseline)]) == 1
        capsys.readouterr()
        assert (
            main(
                [
                    str(target),
                    "--baseline",
                    str(baseline),
                    "--update-baseline",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main([str(target), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out

    def test_update_baseline_refuses_sec000(self, tmp_path, capsys):
        target = _write_module(
            tmp_path, 'x = 1  # seclint: disable=SEC001\n'
        )
        baseline = tmp_path / "baseline.json"
        code = main(
            [str(target), "--baseline", str(baseline), "--update-baseline"]
        )
        assert code == 2
        assert not baseline.exists()
        err = capsys.readouterr().err
        assert "SEC000" in err

    def test_baseline_file_is_sorted_and_stable(self, tmp_path):
        target = _write_module(tmp_path, LEAKY)
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        report = analyze_paths([target])
        pairs = [(f, report.line_text_for(f)) for f in report.findings]
        write_baseline(a, pairs)
        write_baseline(b, list(reversed(pairs)))
        assert a.read_text() == b.read_text()
