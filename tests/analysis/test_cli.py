"""CLI contract: exit codes, output format, --list-rules, --json, module entry."""

import json
import subprocess
import sys
from pathlib import Path

from repro.analysis.cli import main
from repro.analysis.registry import rule_ids

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"

LEAKY = 'def f(p):\n    return f"p={p}"\n'
CLEAN = "def f(n):\n    return n + 1\n"


def test_exit_zero_on_clean_tree(tmp_path, capsys):
    (tmp_path / "ok.py").write_text(CLEAN)
    assert main([str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out
    assert "1 file(s) scanned" in out


def test_exit_one_with_file_line_rule_output(tmp_path, capsys):
    target = tmp_path / "leak.py"
    target.write_text(LEAKY)
    assert main([str(target)]) == 1
    out = capsys.readouterr().out
    # per-finding lines carry the file:line:col: SEC0xx shape
    assert "leak.py:2:" in out
    assert "SEC001" in out


def test_exit_two_on_missing_path(tmp_path, capsys):
    assert main([str(tmp_path / "nope")]) == 2
    assert "error" in capsys.readouterr().err


def test_exit_two_on_no_paths(capsys):
    assert main([]) == 2


def test_list_rules_covers_registry(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in rule_ids():
        assert rule_id in out
    assert "SEC000" in out


def test_json_output_is_parseable(tmp_path, capsys):
    target = tmp_path / "leak.py"
    target.write_text(LEAKY)
    assert main([str(target), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_scanned"] == 1
    assert payload["findings"][0]["rule"] == "SEC001"
    assert payload["findings"][0]["line"] == 2


def test_module_entry_point(tmp_path):
    target = tmp_path / "leak.py"
    target.write_text(LEAKY)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(target)],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 1
    assert "SEC001" in proc.stdout


def test_self_scan_of_repo_src_is_clean():
    """The committed tree must pass its own gate (the CI invariant)."""
    baseline = REPO_ROOT / ".seclint-baseline.json"
    args = [str(SRC), "--baseline", str(baseline)]
    assert main(args) == 0
