"""SEC005 negative corpus: broad swallow OUTSIDE repro/crypto + repro/net.

Experiment drivers may tolerate broad handlers; the hygiene rule binds
the crypto and network core only.
"""


def tolerate(flaky):
    try:
        flaky()
    except Exception:
        return None
