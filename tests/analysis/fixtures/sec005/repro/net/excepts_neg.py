"""SEC005 negative corpus: broad-but-honest and narrow handlers."""


def reraise(risky):
    try:
        risky()
    except Exception:
        raise


def convert_to_typed(risky):
    try:
        risky()
    except Exception as exc:
        raise RuntimeError("wrapped for the wire") from exc


def conditional_reraise(risky, recoverable):
    try:
        risky()
    except Exception as exc:
        if not recoverable(exc):
            raise


def narrow_best_effort(close):
    try:
        close()
    except OSError:
        pass
