"""SEC005 positive corpus (lives under a repro/net path segment)."""


def swallow(risky):
    try:
        risky()
    except Exception:  # EXPECT: SEC005
        pass


def bare_swallow(risky):
    try:
        risky()
    except:  # EXPECT: SEC005
        return None


def tuple_swallow(risky, log):
    try:
        risky()
    except (ValueError, Exception):  # EXPECT: SEC005
        log("ignored")
