"""SEC004 negative corpus: the discipline done right."""

import threading
from collections import OrderedDict


class SessionRegistry:
    def __init__(self):
        # construction happens-before sharing: __init__ is exempt
        self._lock = threading.Lock()
        self._states = OrderedDict()
        self.resident_bytes = 0
        self.evictions = 0

    def save(self, key, state):
        with self._lock:
            self._states[key] = state
            self.resident_bytes += 1
            while len(self._states) > 4:
                self._evict_lru_locked()

    def _evict_lru_locked(self):
        # the *_locked suffix declares "caller holds the lock"
        self._states.popitem(last=False)
        self.evictions += 1

    def lookup(self, key):
        with self._lock:
            # reads are allowed anywhere; only writes are disciplined
            return self._states.get(key)

    def read_without_lock(self):
        return self.resident_bytes


class WarmWorkerPool:
    def __init__(self):
        self._lock = threading.Lock()
        self._executor = None
        self._broken = False
        self._closed = False
        self._primed_key = None

    def acquire(self, key_blob):
        with self._lock:
            if self._executor is None:
                self._executor = object()
                self._primed_key = key_blob
            return self._executor

    def mark_broken(self):
        with self._lock:
            self._shutdown_locked()

    def _shutdown_locked(self):
        self._broken = True
        self._executor = None

    def broken(self):
        return self._broken


class KeyContextCache:
    def __init__(self):
        self._lock = threading.Lock()
        self._contexts = OrderedDict()

    def get(self, key, context):
        with self._lock:
            stored = self._contexts.setdefault(key, context)
            while len(self._contexts) > 8:
                self._contexts.popitem(last=False)
            return stored


class Unrelated:
    """Same attribute names, undeclared class: not this rule's business."""

    def write(self):
        self._states = {}
        self.evictions = 0
