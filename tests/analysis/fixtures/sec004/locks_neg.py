"""SEC004 negative corpus: the discipline done right."""

import threading
from collections import OrderedDict


class SessionRegistry:
    def __init__(self):
        # construction happens-before sharing: __init__ is exempt
        self._lock = threading.Lock()
        self._states = OrderedDict()
        self.resident_bytes = 0
        self.evictions = 0

    def save(self, key, state):
        with self._lock:
            self._states[key] = state
            self.resident_bytes += 1
            while len(self._states) > 4:
                self._evict_lru_locked()

    def _evict_lru_locked(self):
        # the *_locked suffix declares "caller holds the lock"
        self._states.popitem(last=False)
        self.evictions += 1

    def lookup(self, key):
        with self._lock:
            # reads are allowed anywhere; only writes are disciplined
            return self._states.get(key)

    def read_without_lock(self):
        return self.resident_bytes


class Unrelated:
    """Same attribute names, undeclared class: not this rule's business."""

    def write(self):
        self._states = {}
        self.evictions = 0
