"""SEC004 positive corpus: guarded writes outside the declared lock.

The class names here match the default lock-guard declarations
(:class:`repro.analysis.config.AnalysisConfig.lock_guards`), exactly as
the real classes in the tree do.
"""

import threading
from collections import OrderedDict


class SessionRegistry:
    def __init__(self):
        self._lock = threading.Lock()
        self._states = OrderedDict()
        self.resident_bytes = 0
        self.evictions = 0

    def save(self, key, state):
        self._states[key] = state  # EXPECT: SEC004

    def bump(self):
        self.evictions += 1  # EXPECT: SEC004

    def forget(self, key):
        self._states.pop(key, None)  # EXPECT: SEC004

    def half_guarded(self, key):
        with self._lock:
            self._states[key] = object()
        self.resident_bytes -= 1  # EXPECT: SEC004

    def wrong_lock(self, key):
        with self.other_lock:
            self._states[key] = object()  # EXPECT: SEC004


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount=1):
        self._value += amount  # EXPECT: SEC004


class Tracer:
    def __init__(self):
        self._lock = threading.Lock()
        self._totals = {}

    def record(self, name):
        self._totals[name] = self._totals.get(name, 0) + 1  # EXPECT: SEC004


class WarmWorkerPool:
    def __init__(self):
        self._lock = threading.Lock()
        self._executor = None
        self._broken = False
        self._closed = False
        self._primed_key = None

    def mark_broken(self):
        self._broken = True  # EXPECT: SEC004

    def close(self):
        with self._lock:
            self._closed = True
        self._executor = None  # EXPECT: SEC004

    def reprime(self, key_blob):
        self._primed_key = key_blob  # EXPECT: SEC004


class KeyContextCache:
    def __init__(self):
        self._lock = threading.Lock()
        self._contexts = OrderedDict()

    def store(self, key, context):
        self._contexts[key] = context  # EXPECT: SEC004

    def evict(self):
        self._contexts.popitem(last=False)  # EXPECT: SEC004
