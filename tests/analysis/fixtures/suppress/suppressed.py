"""Valid suppressions: violations silenced with a written justification.

This file must produce zero findings — both suppression placements
(trailing, standalone-above) are exercised.
"""


def trailing(p):
    return f"p={p}"  # seclint: disable=SEC001 -- fixture: trailing suppression

def standalone(q):
    # seclint: disable=SEC001 -- fixture: standalone suppression covers the next line
    return "q=%d" % q


def multi_rule(mac, expected):
    return mac == expected  # seclint: disable=SEC003,SEC001 -- fixture: several ids in one directive
