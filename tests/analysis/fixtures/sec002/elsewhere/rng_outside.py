"""SEC002 negative corpus: stdlib random OUTSIDE the restricted packages.

Benchmarks and examples may use ``random`` freely; the discipline only
binds repro/crypto and repro/spfe.
"""

import random


def jitter():
    return random.uniform(0.0, 1.0)
