"""SEC002 positive corpus (lives under a repro/crypto path segment)."""

import random  # EXPECT: SEC002
from random import choice  # EXPECT: SEC002


def draw():
    return random.random()  # EXPECT: SEC002


def pick(items):
    return choice(items)


def numpy_style(np):
    return np.random.randint(0, 2)  # EXPECT: SEC002
