"""SEC002 negative corpus: sanctioned randomness inside repro/crypto."""

import secrets


def draw(rng):
    return rng.randbits(16)


def token():
    return secrets.token_bytes(8)


def not_the_module(randomize):
    # a callable merely *named* like the module is fine
    return randomize()
