"""SEC003 negative corpus: constant-time and non-secret comparisons."""

import hmac


def verify_mac(mac, expected):
    return hmac.compare_digest(mac, expected)


def int_compare(n, modulus):
    return n == modulus


def length_is_metadata(mac):
    return len(mac) == 32


def membership_is_not_equality(tags, candidate):
    return candidate in tags
