"""SEC003 positive corpus: secret bytes compared with ==/!=."""


def verify_mac(mac, expected):
    return mac == expected  # EXPECT: SEC003


def check_tag(received, tag):
    if received != tag:  # EXPECT: SEC003
        raise RuntimeError("bad tag")
    return True


class Drbg:
    def same_state(self, other):
        return self._key == other.state  # EXPECT: SEC003
