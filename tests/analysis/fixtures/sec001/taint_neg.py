"""SEC001 negative corpus: near-misses that must NOT be flagged."""


def size_is_metadata(weights):
    return "weight count = %d" % len(weights)


def type_is_metadata(seed):
    return "seed type: %s" % type(seed).__name__


def public_values_are_fine(n, bits):
    raise ValueError("modulus %d too small for %d bits" % (n, bits))


def mention_in_text_only():
    raise ValueError("p must be an odd prime")


def to_bytes(p):
    # whitelisted serializer function name: serializers legitimately
    # turn secrets into bytes
    return p.to_bytes(64, "big")


def non_secret_names(total, count):
    return f"average {total / count}"


class PublicKey:
    def __init__(self, n):
        self.n = n

    def __repr__(self):
        return "PublicKey(bits=%d)" % self.n.bit_length()
