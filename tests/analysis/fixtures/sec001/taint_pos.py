"""SEC001 positive corpus: registered secrets reaching leak sinks."""


class DecryptionError(Exception):
    pass


def f_string_leak(p):
    return f"prime was {p}"  # EXPECT: SEC001


def percent_leak(q):
    return "factor q = %d" % q  # EXPECT: SEC001


def format_leak(weights):
    return "weights: {}".format(weights)  # EXPECT: SEC001


def exception_positional_leak(p):
    raise DecryptionError("bad factor", p)  # EXPECT: SEC001


def exception_keyword_leak(seed):
    raise ValueError(seed=seed)  # EXPECT: SEC001


def self_attribute_leak(key):
    raise DecryptionError("state %r" % key._value)  # EXPECT: SEC001


def to_bytes_leak(p):
    return p.to_bytes(64, "big")  # EXPECT: SEC001


class PrivateKey:
    def __init__(self, p, q):
        self.p = p
        self.q = q

    def __repr__(self):
        return "PrivateKey<" + str(self.p) + ">"  # EXPECT: SEC001
