"""Corpus-driven rule tests: every seeded violation found, no extras.

The fixtures under ``fixtures/`` carry ``# EXPECT: SEC0xx`` markers on
each seeded violation line.  Analyzing the whole corpus must produce
exactly the marked ``(file, line, rule)`` triples — any miss is a
false negative, any extra is a false positive on the negative corpus.
"""

import re
from pathlib import Path

import pytest

from repro.analysis import AnalysisConfig, analyze_paths
from repro.analysis.context import FileContext
from repro.analysis.engine import iter_python_files
from repro.analysis.registry import all_rules

FIXTURES = Path(__file__).parent / "fixtures"

_EXPECT_RE = re.compile(r"#\s*EXPECT:\s*([A-Z0-9,\s]+)$")


def expected_findings():
    """(basename, line, rule) triples declared by the EXPECT markers."""
    expected = set()
    for path in iter_python_files([FIXTURES]):
        for lineno, text in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            match = _EXPECT_RE.search(text)
            if match is None:
                continue
            for rule_id in match.group(1).split(","):
                expected.add((path.name, lineno, rule_id.strip()))
    return expected


def actual_findings():
    report = analyze_paths([FIXTURES])
    return report, {
        (Path(f.path).name, f.line, f.rule_id) for f in report.findings
    }


def test_corpus_matches_expect_markers_exactly():
    expected = expected_findings()
    assert expected, "corpus must seed at least one violation"
    report, actual = actual_findings()
    missed = expected - actual
    false_positives = actual - expected
    assert not missed, "seeded violations not detected: %r" % sorted(missed)
    assert not false_positives, (
        "false positives on the corpus: %r" % sorted(false_positives)
    )


def test_every_rule_has_positive_and_negative_coverage():
    expected = expected_findings()
    seeded_rules = {rule_id for _, _, rule_id in expected}
    for rule in all_rules():
        assert rule.rule_id in seeded_rules, (
            "no positive fixture for %s" % rule.rule_id
        )


def test_corpus_exit_is_nonzero_via_cli(capsys):
    from repro.analysis.cli import main

    code = main([str(FIXTURES), "--no-baseline"])
    out = capsys.readouterr().out
    assert code == 1
    assert "SEC001" in out and "SEC005" in out


def test_valid_suppressions_silence_and_are_counted():
    report, actual = actual_findings()
    suppressed_files = {
        Path(f.path).name for f, _ in report.suppressed
    }
    assert suppressed_files == {"suppressed.py"}
    assert len(report.suppressed) == 3
    assert all(why for _, why in report.suppressed)


def test_path_scoping_spares_code_outside_restricted_packages():
    _, actual = actual_findings()
    flagged_files = {name for name, _, _ in actual}
    assert "rng_outside.py" not in flagged_files
    assert "excepts_outside.py" not in flagged_files


def test_deterministic_ordering_and_input_order_invariance():
    first = analyze_paths([FIXTURES]).findings
    second = analyze_paths([FIXTURES]).findings
    assert first == second
    assert first == sorted(first)
    # handing the engine every file individually, in reverse order,
    # must not change the report
    files = list(reversed(iter_python_files([FIXTURES])))
    third = analyze_paths(files).findings
    assert third == first


def test_custom_config_overrides_secret_registry(tmp_path):
    target = tmp_path / "custom.py"
    target.write_text("def f(card_number):\n    return f'{card_number}'\n")
    silent = analyze_paths([target])
    assert silent.clean
    config = AnalysisConfig(secret_names=frozenset({"card_number"}))
    loud = analyze_paths([target], config=config)
    assert [f.rule_id for f in loud.findings] == ["SEC001"]


def test_unparseable_file_is_a_hard_finding(tmp_path):
    target = tmp_path / "broken.py"
    target.write_text("def broken(:\n")
    report = analyze_paths([target])
    assert [f.rule_id for f in report.findings] == ["SEC000"]
    assert "could not parse" in report.findings[0].message


@pytest.mark.parametrize(
    "snippet",
    [
        "import random\n",
        "import random as rnd\n",
        "from random import shuffle\n",
        "def f(random):\n    return random.random()\n",
    ],
)
def test_sec002_variants(tmp_path, snippet):
    crypto_dir = tmp_path / "repro" / "crypto"
    crypto_dir.mkdir(parents=True)
    (crypto_dir / "mod.py").write_text(snippet)
    report = analyze_paths([tmp_path])
    assert report.findings, "expected SEC002 for %r" % snippet
    assert {f.rule_id for f in report.findings} == {"SEC002"}


def test_sec004_respects_declared_lock_only():
    source = (
        "class SessionRegistry:\n"
        "    def save(self, k):\n"
        "        with self._lock:\n"
        "            self._states[k] = 1\n"
        "    def racy(self, k):\n"
        "        self._states[k] = 1\n"
    )
    ctx = FileContext.from_source(source, AnalysisConfig())
    rule = next(r for r in all_rules() if r.rule_id == "SEC004")
    findings = list(rule.check(ctx))
    assert [f.line for f in findings] == [6]
