"""Suppression directive semantics: justification required, SEC000 on abuse."""

from pathlib import Path

from repro.analysis import analyze_paths
from repro.analysis.registry import rule_ids
from repro.analysis.suppressions import collect_suppressions


def _analyze(tmp_path: Path, source: str):
    target = tmp_path / "mod.py"
    target.write_text(source)
    return analyze_paths([target])


LEAK = 'def f(p):\n    return f"p={p}"'


class TestValidDirectives:
    def test_trailing_suppression_with_justification(self, tmp_path):
        report = _analyze(
            tmp_path,
            'def f(p):\n'
            '    return f"p={p}"  # seclint: disable=SEC001 -- test: owner-facing output\n',
        )
        assert report.clean
        assert len(report.suppressed) == 1
        finding, why = report.suppressed[0]
        assert finding.rule_id == "SEC001"
        assert why == "test: owner-facing output"

    def test_standalone_suppression_covers_next_line(self, tmp_path):
        report = _analyze(
            tmp_path,
            "def f(p):\n"
            "    # seclint: disable=SEC001 -- test: standalone placement\n"
            '    return f"p={p}"\n',
        )
        assert report.clean
        assert len(report.suppressed) == 1

    def test_multiple_ids_in_one_directive(self, tmp_path):
        report = _analyze(
            tmp_path,
            "def f(mac, p):\n"
            '    return f"{p}" if mac == p else ""'
            "  # seclint: disable=SEC001,SEC003 -- test: both rules\n",
        )
        assert report.clean
        assert {f.rule_id for f, _ in report.suppressed} == {"SEC001", "SEC003"}

    def test_suppression_only_silences_named_rules(self, tmp_path):
        report = _analyze(
            tmp_path,
            "def f(mac, other):\n"
            "    return mac == other  # seclint: disable=SEC001 -- test: wrong rule named\n",
        )
        assert [f.rule_id for f in report.findings] == ["SEC003"]


class TestMalformedDirectives:
    def test_missing_justification_is_sec000_and_does_not_suppress(
        self, tmp_path
    ):
        report = _analyze(
            tmp_path,
            'def f(p):\n    return f"p={p}"  # seclint: disable=SEC001\n',
        )
        rules = sorted(f.rule_id for f in report.findings)
        assert rules == ["SEC000", "SEC001"]
        assert not report.suppressed
        sec000 = [f for f in report.findings if f.rule_id == "SEC000"][0]
        assert "justification" in sec000.message

    def test_unknown_rule_id_is_sec000(self, tmp_path):
        report = _analyze(
            tmp_path,
            'def f(p):\n'
            '    return f"p={p}"  # seclint: disable=SEC999 -- bogus rule\n',
        )
        rules = sorted(f.rule_id for f in report.findings)
        assert rules == ["SEC000", "SEC001"]
        assert "unknown rule id" in report.findings[0].message

    def test_garbled_directive_is_sec000(self, tmp_path):
        report = _analyze(
            tmp_path,
            "def f():\n    return 1  # seclint: enable=SEC001 -- wrong verb\n",
        )
        assert [f.rule_id for f in report.findings] == ["SEC000"]
        assert "malformed" in report.findings[0].message

    def test_sec000_cannot_be_suppressed(self, tmp_path):
        report = _analyze(
            tmp_path,
            "def f():\n"
            "    return 1  # seclint: disable=SEC001  # seclint: disable=SEC000 -- nope\n",
        )
        assert any(f.rule_id == "SEC000" for f in report.findings)


class TestParser:
    def test_collects_lines_and_ids(self):
        source = (
            "x = 1  # seclint: disable=SEC001 -- why not\n"
            "# seclint: disable=SEC002,SEC003 -- standalone\n"
            "y = 2\n"
        )
        by_line, problems = collect_suppressions(source, rule_ids())
        assert not problems
        assert by_line[1].rule_ids == frozenset({"SEC001"})
        # the standalone directive on line 2 applies to line 3
        assert by_line[3].rule_ids == frozenset({"SEC002", "SEC003"})
        assert by_line[3].justification == "standalone"

    def test_non_directive_comments_ignored(self):
        by_line, problems = collect_suppressions(
            "x = 1  # plain comment\n# noqa: BLE001\n", rule_ids()
        )
        assert not by_line and not problems
