"""`StateStore` facade: round trips, single-use pools, metrics."""

import threading

import pytest

from repro.crypto.multiexp import FixedBaseTable
from repro.crypto.paillier import RandomnessPool, generate_keypair
from repro.crypto.rng import DeterministicRandom
from repro.datastore.database import ServerDatabase
from repro.exceptions import StoreError
from repro.obs.registry import MetricsRegistry
from repro.store.state import SessionRecord, StateStore, key_fingerprint

KEY_BITS = 128


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(KEY_BITS, DeterministicRandom("store-state"))


@pytest.fixture()
def store():
    with StateStore(":memory:") as s:
        yield s


def test_open_creates_directory_and_conventional_file(tmp_path):
    state_dir = str(tmp_path / "state")
    store = StateStore.open(state_dir)
    try:
        assert store.path.startswith(state_dir)
        assert store.path.endswith("repro-state.sqlite")
    finally:
        store.close()


def test_key_fingerprint_is_stable_and_distinct(keypair):
    fp = key_fingerprint(keypair.public.n)
    assert fp == key_fingerprint(keypair.public.n)
    assert len(fp) == 64  # sha256 hex
    assert fp != key_fingerprint(keypair.public.n + 2)


# -- session journal ------------------------------------------------------


def test_session_round_trip_and_delete(store, keypair):
    record = SessionRecord(
        session_id=b"\x00" * 16,
        key_bits=KEY_BITS,
        chunk_size=8,
        public_n=keypair.public.n,
        aggregate=keypair.public.nsquare - 12345,  # full-width blob
        received=40,
        chunks_received=5,
        done=False,
    )
    store.save_session(record)
    loaded = store.load_session(record.session_id)
    assert loaded.aggregate == record.aggregate
    assert loaded.public_n == keypair.public.n
    assert loaded.touched_at > 0
    assert store.session_count() == 1

    # upsert by id: the newer snapshot wins
    store.save_session(
        SessionRecord(
            record.session_id, KEY_BITS, 8, keypair.public.n, 99, 48, 6, True
        )
    )
    loaded = store.load_session(record.session_id)
    assert (loaded.aggregate, loaded.received, loaded.done) == (99, 48, True)
    assert store.session_count() == 1

    store.delete_session(record.session_id)
    assert store.load_session(record.session_id) is None
    assert store.session_count() == 0
    store.delete_session(record.session_id)  # idempotent


def test_zero_aggregate_round_trips(store, keypair):
    # aggregate=1 is the multiplicative identity; 0 must also survive
    # the minimal-width blob encoding (bit_length() == 0 edge).
    record = SessionRecord(b"Z" * 16, KEY_BITS, 4, keypair.public.n, 0, 0, 0, False)
    store.save_session(record)
    assert store.load_session(b"Z" * 16).aggregate == 0


# -- fixed-base tables ----------------------------------------------------


def test_fixed_base_table_round_trip(store, keypair):
    public = keypair.public
    base = pow(3, public.n, public.nsquare)
    table = FixedBaseTable(base, public.nsquare, public.bits, window=4)
    fp = key_fingerprint(public.n)
    store.save_fixed_base_table(fp, table, label="obfuscator")

    loaded = store.load_fixed_base_table(fp, label="obfuscator")
    assert loaded is not None
    assert (loaded.base, loaded.modulus) == (table.base, table.modulus)
    assert (loaded.exponent_bits, loaded.window) == (public.bits, 4)
    # bit-for-bit equivalent exponentiation, no recomputation
    for exponent in (0, 1, 5, (1 << public.bits) - 1):
        assert loaded.pow(exponent) == table.pow(exponent)

    assert store.load_fixed_base_table(fp, label="other") is None
    assert store.load_fixed_base_table("feed" * 16) is None


def test_from_rows_validates_shape(keypair):
    public = keypair.public
    table = FixedBaseTable(7, public.nsquare, 32, window=4)
    rows = table.export_rows()
    from repro.exceptions import ParameterError

    with pytest.raises(ParameterError, match="shape"):
        FixedBaseTable.from_rows(7, public.nsquare, 32, 4, rows[:-1])
    with pytest.raises(ParameterError, match="shape"):
        FixedBaseTable.from_rows(
            7, public.nsquare, 32, 4, [r[:-1] for r in rows]
        )
    rebuilt = FixedBaseTable.from_rows(7, public.nsquare, 32, 4, rows)
    assert rebuilt.pow(12345) == table.pow(12345)
    assert rebuilt.entries == table.entries


# -- obfuscator pools -----------------------------------------------------


def test_pool_round_trip_is_single_use(store, keypair):
    public = keypair.public
    pool = RandomnessPool(
        public, rng=DeterministicRandom("pool"), fixed_base=True
    )
    pool.precompute(6)
    taken = pool.take()  # one handed out before persistence
    store.save_randomness_pool(pool)
    assert len(pool) == 0  # export drains: no obfuscator lives twice

    warm = store.load_randomness_pool(
        public, rng=DeterministicRandom("pool-2")
    )
    assert len(warm) == 5
    assert warm.restored == 5
    assert warm.export_table() is not None  # table restored too
    # the journalled row was consumed by the load: a second warm start
    # cannot hand out the same single-use obfuscators again
    again = store.load_randomness_pool(
        public, rng=DeterministicRandom("pool-3")
    )
    assert again.restored == 0

    # restored obfuscators are valid encryptions of zero
    obfuscator = warm.take()
    assert obfuscator != taken
    ciphertext = public.raw_encrypt(0, obfuscator)
    assert keypair.private.raw_decrypt(ciphertext) == 0


def test_warm_pool_skips_table_build(store, keypair):
    public = keypair.public
    cold = RandomnessPool(
        public, rng=DeterministicRandom("cold"), fixed_base=True
    )
    cold.precompute(1)  # forces the table build
    store.save_randomness_pool(cold)

    warm = store.load_randomness_pool(
        public, rng=DeterministicRandom("warm")
    )
    # the table came from the store: drawing obfuscators never rebuilds
    table_before = warm.export_table()
    warm.precompute(3)
    assert warm.export_table() is table_before


# -- databases ------------------------------------------------------------


def test_database_round_trip_and_listing(store):
    db = ServerDatabase([1, 0, 65535, 42], value_bits=16)
    store.save_database("prod", db)
    store.save_database("tiny", ServerDatabase([3], value_bits=8))

    loaded = store.load_database("prod")
    assert loaded.values == db.values
    assert loaded.value_bits == 16
    assert store.list_databases() == [("prod", 4, 16), ("tiny", 1, 8)]

    with pytest.raises(StoreError, match="no database named"):
        store.load_database("missing")
    with pytest.raises(StoreError, match="non-empty"):
        store.save_database("", db)


# -- lifecycle and metrics ------------------------------------------------


def test_closed_store_raises(tmp_path, keypair):
    store = StateStore(str(tmp_path / "s.sqlite"))
    store.close()
    store.close()  # idempotent
    with pytest.raises(StoreError, match="closed"):
        store.session_count()
    with pytest.raises(StoreError, match="closed"):
        store.save_session(
            SessionRecord(b"x" * 16, KEY_BITS, 4, keypair.public.n, 1, 0, 0, False)
        )


def test_store_metrics(keypair):
    metrics = MetricsRegistry()
    with StateStore(":memory:", metrics=metrics) as store:
        record = SessionRecord(
            b"m" * 16, KEY_BITS, 4, keypair.public.n, 1, 0, 0, False
        )
        store.save_session(record)
        store.load_session(b"m" * 16)
        store.load_session(b"?" * 16)
        store.delete_session(b"m" * 16)
        store.delete_session(b"m" * 16)  # no row: not a delete
        fp = key_fingerprint(keypair.public.n)
        store.load_fixed_base_table(fp)
        pool = RandomnessPool(
            keypair.public, rng=DeterministicRandom("m"), fixed_base=True
        )
        pool.precompute(2)
        store.save_randomness_pool(pool)
        store.load_pool_obfuscators(keypair.public)

        values = {
            snap.name: snap.value
            for snap in metrics.collect()
            if snap.kind == "counter"
        }
        assert values["repro_store_journal_writes_total"] == 1
        assert values["repro_store_journal_hits_total"] == 1
        assert values["repro_store_journal_misses_total"] == 1
        assert values["repro_store_journal_deletes_total"] == 1
        assert values["repro_store_table_misses_total"] == 1
        assert values["repro_store_pool_hits_total"] == 1
        assert values["repro_store_pool_obfuscators_restored_total"] == 2


def test_concurrent_writers_serialise(store, keypair):
    """Worker threads journal through one lock without corruption."""
    errors = []

    def hammer(worker):
        try:
            for round_index in range(20):
                session_id = bytes([worker] * 8) + round_index.to_bytes(8, "big")
                store.save_session(
                    SessionRecord(
                        session_id, KEY_BITS, 4, keypair.public.n,
                        worker + round_index, 1, 1, False,
                    )
                )
                assert store.load_session(session_id) is not None
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=hammer, args=(worker,)) for worker in range(4)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert store.session_count() == 80


class TestCalibrationPersistence:
    def test_save_load_roundtrip_and_upsert(self):
        with StateStore(":memory:") as store:
            assert store.load_calibration("engine-mode-profile") is None
            store.save_calibration("engine-mode-profile", '{"v": 1}')
            assert store.load_calibration("engine-mode-profile") == '{"v": 1}'
            store.save_calibration("engine-mode-profile", '{"v": 2}')
            assert store.load_calibration("engine-mode-profile") == '{"v": 2}'

    def test_kinds_are_independent(self):
        with StateStore(":memory:") as store:
            store.save_calibration("a", "one")
            store.save_calibration("b", "two")
            assert store.load_calibration("a") == "one"
            assert store.load_calibration("b") == "two"

    def test_empty_kind_rejected(self):
        with StateStore(":memory:") as store:
            with pytest.raises(StoreError):
                store.save_calibration("", "{}")

    def test_survives_reopen(self, tmp_path):
        path = str(tmp_path / "calib.sqlite")
        with StateStore(path) as store:
            store.save_calibration("engine-mode-profile", '{"persisted": true}')
        with StateStore(path) as store:
            assert (
                store.load_calibration("engine-mode-profile")
                == '{"persisted": true}'
            )

    def test_metrics_count_writes_hits_and_misses(self):
        metrics = MetricsRegistry()
        with StateStore(":memory:", metrics=metrics) as store:
            store.load_calibration("engine-mode-profile")  # miss
            store.save_calibration("engine-mode-profile", "{}")  # write
            store.load_calibration("engine-mode-profile")  # hit
        values = {
            snap.name: snap.value
            for snap in metrics.collect()
            if snap.kind == "counter"
        }
        assert values["repro_store_calibration_writes_total"] == 1
        assert values["repro_store_calibration_hits_total"] == 1
        assert values["repro_store_calibration_misses_total"] == 1
