"""`SessionRegistry` + `StateStore`: the journal survives restarts,
eviction survives them too.

The invariant under test (satellite of the durability PR): after a
process restart, a journalled session resumes exactly where it stopped,
and an *evicted* session answers ``RESUME_UNKNOWN`` — never a stale
snapshot from before the eviction.
"""

import pytest

from repro.crypto.rng import DeterministicRandom
from repro.datastore.database import ServerDatabase
from repro.net import codec
from repro.net.codec import FrameDecoder, FrameType
from repro.spfe.session import ClientSession, ServerSession, SessionRegistry
from repro.store.state import StateStore

KEY_BITS = 128
CHUNK = 4
DB = ServerDatabase([5, 0, 7, 1, 9, 2, 0, 3], value_bits=8)


def make_client(seed):
    selection = [1, 0, 1, 1, 0, 0, 1, 1]
    return ClientSession(
        selection,
        key_bits=KEY_BITS,
        chunk_size=CHUNK,
        rng=DeterministicRandom(seed),
    )


def expected_sum(client):
    return sum(w * v for w, v in zip(client.selection, DB.values))


def feed(server, client, frames):
    """Feed outgoing client frames to a server, routing replies back."""
    for data in frames:
        reply = server.receive_bytes(data)
        if reply:
            client.receive_bytes(reply)


def decode_frames(data):
    decoder = FrameDecoder()
    decoder.feed(data)
    return list(decoder.frames())


@pytest.fixture()
def store_path(tmp_path):
    return str(tmp_path / "state.sqlite")


def test_eviction_deletes_the_journal_row(store_path):
    with StateStore(store_path) as store:
        registry = SessionRegistry(capacity=1, store=store)
        a, b = make_client("a"), make_client("b")
        frames_a = list(a.initial_bytes())
        frames_b = list(b.initial_bytes())

        # A registers (HELLO + KEY), then B's registration evicts A.
        feed(ServerSession(DB, registry=registry), a, frames_a[:2])
        assert store.session_count() == 1
        feed(ServerSession(DB, registry=registry), b, frames_b[:2])
        assert registry.evictions == 1
        assert store.session_count() == 1
        assert store.load_session(a.session_id) is None
        assert store.load_session(b.session_id) is not None


def test_restarted_registry_recovers_from_journal(store_path):
    with StateStore(store_path) as store:
        registry = SessionRegistry(capacity=4, store=store)
        client = make_client("recover")
        frames = list(client.initial_bytes())
        # HELLO + KEY + first chunk: mid-protocol state in the journal
        feed(ServerSession(DB, registry=registry), client, frames[:3])

    # the process "restarts": nothing survives but the file
    with StateStore(store_path) as store:
        registry = SessionRegistry(capacity=4, store=store)
        assert len(registry) == 0
        state = registry.get(client.session_id)
        assert state is not None
        assert state.chunks_received == 1
        assert state.received == CHUNK
        assert not state.done
        assert registry.recoveries == 1
        # the rehydrated entry is now resident: no second recovery
        assert registry.get(client.session_id) is state
        assert registry.recoveries == 1
        assert registry.get(b"\x99" * 16) is None


def test_resume_across_restart_completes_without_reencryption(store_path):
    client = make_client("resume")
    frames = list(client.initial_bytes())
    encryptions_after_stream = client.encryptions

    with StateStore(store_path) as store:
        registry = SessionRegistry(capacity=4, store=store)
        feed(ServerSession(DB, registry=registry), client, frames[:3])

    with StateStore(store_path) as store:
        registry = SessionRegistry(capacity=4, store=store)
        server = ServerSession(DB, registry=registry)
        reply = server.receive_bytes(client.resume_request())
        client.receive_bytes(reply)
        assert client.resume_ready
        feed(server, client, client.resume_bytes())

    assert client.result == expected_sum(client)
    # resume re-sent cached ciphertext bytes; nothing was re-encrypted
    assert client.encryptions == encryptions_after_stream
    assert client.encryptions == len(client.selection)


def test_evicted_session_resumes_unknown_after_restart(store_path):
    """Evict, restart, RESUME: the answer must be RESUME_UNKNOWN."""
    a, b = make_client("evicted"), make_client("winner")
    frames_a = list(a.initial_bytes())

    with StateStore(store_path) as store:
        registry = SessionRegistry(capacity=1, store=store)
        feed(ServerSession(DB, registry=registry), a, frames_a[:3])
        # B runs to completion; capacity=1 evicts A's journalled state
        feed(ServerSession(DB, registry=registry), b, b.initial_bytes())
        assert b.result == expected_sum(b)
        assert registry.evictions >= 1

    with StateStore(store_path) as store:
        registry = SessionRegistry(capacity=1, store=store)
        server = ServerSession(DB, registry=registry)
        reply = decode_frames(server.receive_bytes(a.resume_request()))
        assert [f.frame_type for f in reply] == [FrameType.ACK]
        assert codec.decode_ack(reply[0].payload) == codec.RESUME_UNKNOWN

        # the client degrades to a fresh stream on the same connection,
        # still without re-encrypting its cached chunks
        a.receive_bytes(server.receive_bytes(a.resume_request()))
        encryptions_before = a.encryptions
        feed(server, a, a.resume_bytes())
        assert a.result == expected_sum(a)
        assert a.encryptions == encryptions_before


def test_discard_deletes_the_journal_row(store_path):
    with StateStore(store_path) as store:
        registry = SessionRegistry(capacity=4, store=store)
        client = make_client("discard")
        feed(
            ServerSession(DB, registry=registry),
            client,
            list(client.initial_bytes())[:2],
        )
        assert store.load_session(client.session_id) is not None
        registry.discard(client.session_id)
        assert store.load_session(client.session_id) is None
        registry.discard(client.session_id)  # idempotent


def test_protocol_violation_clears_the_journal(store_path):
    """A rejected peer must restart, not resume — even across restarts."""
    with StateStore(store_path) as store:
        registry = SessionRegistry(capacity=4, store=store)
        client = make_client("violator")
        frames = list(client.initial_bytes())
        server = ServerSession(DB, registry=registry)
        feed(server, client, frames[:2])
        assert store.load_session(client.session_id) is not None
        # replaying the PUBLIC_KEY frame is a protocol violation
        error = server.receive_bytes(frames[1])
        assert server.errored
        assert decode_frames(error)[0].frame_type == FrameType.ERROR
        assert client.session_id not in registry
        assert store.load_session(client.session_id) is None
