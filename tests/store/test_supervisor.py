"""`ServerSupervisor`: restart-on-crash under a bounded backoff budget.

The children here are tiny ``python -c`` scripts, not full servers —
the supervisor does not care what it runs, and small children keep the
suite fast.  The chaos suite (``tests/integration/test_crash_recovery``)
exercises the supervisor with real ``repro serve`` children.
"""

import subprocess
import sys
import time

import pytest

from repro.exceptions import SupervisorError
from repro.obs.registry import MetricsRegistry
from repro.store.supervisor import ServerSupervisor, SupervisorPolicy

FAST = SupervisorPolicy(max_restarts=3, base_delay_s=0.01, max_delay_s=0.05)


def wait_until(predicate, timeout_s=10.0, poll_s=0.01):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(poll_s)
    return predicate()


def test_policy_validation():
    with pytest.raises(SupervisorError):
        SupervisorPolicy(max_restarts=-1)
    with pytest.raises(SupervisorError):
        SupervisorPolicy(base_delay_s=1.0, max_delay_s=0.5)
    with pytest.raises(SupervisorError):
        SupervisorPolicy(multiplier=0.5)
    with pytest.raises(SupervisorError):
        SupervisorPolicy(reset_after_s=0)


def test_policy_backoff_is_bounded_exponential():
    policy = SupervisorPolicy(base_delay_s=0.1, multiplier=2.0, max_delay_s=0.5)
    assert policy.delay_s(1) == pytest.approx(0.1)
    assert policy.delay_s(2) == pytest.approx(0.2)
    assert policy.delay_s(3) == pytest.approx(0.4)
    assert policy.delay_s(4) == pytest.approx(0.5)  # capped
    assert policy.delay_s(10) == pytest.approx(0.5)


def test_empty_argv_rejected():
    with pytest.raises(SupervisorError):
        ServerSupervisor([])


def test_unstartable_child_raises():
    supervisor = ServerSupervisor(["/no/such/binary-xyzzy"], policy=FAST)
    with pytest.raises(SupervisorError, match="cannot start"):
        supervisor.start()


def test_clean_exit_ends_supervision():
    supervisor = ServerSupervisor(
        [sys.executable, "-c", "pass"], policy=FAST,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    supervisor.start()
    supervisor.join(timeout_s=10.0)
    assert supervisor.restarts == 0
    assert not supervisor.gave_up
    assert supervisor.pid is None


def test_crashing_child_is_restarted_until_budget_exhausted():
    metrics = MetricsRegistry()
    supervisor = ServerSupervisor(
        [sys.executable, "-c", "import sys; sys.exit(3)"],
        policy=FAST,
        metrics=metrics,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    supervisor.start()
    supervisor.join(timeout_s=30.0)
    assert supervisor.gave_up
    assert supervisor.restarts == FAST.max_restarts
    counters = {
        snap.name: snap.value
        for snap in metrics.collect()
        if snap.kind == "counter"
    }
    assert counters["repro_store_supervisor_restarts_total"] == FAST.max_restarts
    assert counters["repro_store_supervisor_giveups_total"] == 1


def test_sigkill_restarts_long_lived_child():
    """The chaos primitive: kill -9, supervisor brings the child back."""
    supervisor = ServerSupervisor(
        [sys.executable, "-c", "import time; time.sleep(600)"],
        policy=FAST,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        first_pid = supervisor.start()
        assert supervisor.pid == first_pid
        import os
        import signal

        os.kill(first_pid, signal.SIGKILL)
        assert wait_until(
            lambda: supervisor.pid is not None and supervisor.pid != first_pid
        )
        assert supervisor.restarts == 1
        assert not supervisor.gave_up
    finally:
        supervisor.stop()
    assert supervisor.pid is None


def test_stop_terminates_without_counting_a_restart():
    supervisor = ServerSupervisor(
        [sys.executable, "-c", "import time; time.sleep(600)"],
        policy=FAST,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    supervisor.start()
    supervisor.stop()
    assert supervisor.restarts == 0
    assert not supervisor.gave_up


def test_double_start_rejected():
    supervisor = ServerSupervisor(
        [sys.executable, "-c", "import time; time.sleep(600)"],
        policy=FAST,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    supervisor.start()
    try:
        with pytest.raises(SupervisorError, match="already started"):
            supervisor.start()
    finally:
        supervisor.stop()
