"""Schema/migration machinery of :mod:`repro.store.db`.

The critical property: a store created by an *older* release opens
cleanly under newer code (migrations run in order, data survives), and
a store created by a *newer* release is refused rather than corrupted.
"""

import os
import sqlite3

import pytest

from repro.exceptions import StoreError
from repro.store.db import (
    MIGRATIONS,
    SCHEMA_VERSION,
    migrate,
    open_store_db,
    schema_version,
)
from repro.store.state import SessionRecord, StateStore


def test_fresh_store_is_at_latest_schema(tmp_path):
    conn = open_store_db(str(tmp_path / "s.sqlite"))
    try:
        assert schema_version(conn) == SCHEMA_VERSION
        # every migration recorded its dbversion row
        rows = conn.execute(
            "SELECT version, description FROM dbversion ORDER BY version"
        ).fetchall()
        assert [r[0] for r in rows] == [m[0] for m in MIGRATIONS]
        assert all(r[1] for r in rows)  # descriptions are non-empty
    finally:
        conn.close()


def test_reopen_is_idempotent(tmp_path):
    path = str(tmp_path / "s.sqlite")
    open_store_db(path).close()
    conn = open_store_db(path)
    try:
        assert schema_version(conn) == SCHEMA_VERSION
        assert (
            conn.execute("SELECT COUNT(*) FROM dbversion").fetchone()[0]
            == len(MIGRATIONS)
        )
    finally:
        conn.close()


def test_wal_mode_enabled(tmp_path):
    conn = open_store_db(str(tmp_path / "s.sqlite"))
    try:
        assert conn.execute("PRAGMA journal_mode").fetchone()[0] == "wal"
    finally:
        conn.close()


def test_migrate_returns_applied_versions(tmp_path):
    conn = sqlite3.connect(str(tmp_path / "s.sqlite"))
    try:
        assert migrate(conn) == [m[0] for m in MIGRATIONS]
        assert migrate(conn) == []  # already current: nothing to do
    finally:
        conn.close()


def test_v1_store_upgrades_in_place_and_keeps_data(tmp_path):
    """The CI migration scenario: open a v1-schema store with v2 code."""
    path = str(tmp_path / "old.sqlite")
    conn = open_store_db(path, migrations=MIGRATIONS[:1])
    # a session journalled by the v1 release (no touched_at column yet)
    conn.execute(
        "INSERT INTO sessions (session_id, key_bits, chunk_size, public_n,"
        " aggregate, received, chunks_received, done)"
        " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
        (b"S" * 16, 128, 4, b"\x01\x23", b"\x07", 8, 2, 0),
    )
    conn.commit()
    assert schema_version(conn) == 1
    conn.close()

    # current code opens it: v2 migration runs, data survives
    store = StateStore(path)
    try:
        record = store.load_session(b"S" * 16)
        assert record == SessionRecord(
            session_id=b"S" * 16,
            key_bits=128,
            chunk_size=4,
            public_n=0x123,
            aggregate=7,
            received=8,
            chunks_received=2,
            done=False,
            touched_at=0.0,  # the v2 default for pre-v2 rows
        )
        # and the store is fully writable at the new schema
        store.save_session(record)
        assert store.load_session(b"S" * 16).touched_at > 0
    finally:
        store.close()
    conn = sqlite3.connect(path)
    try:
        assert schema_version(conn) == SCHEMA_VERSION
    finally:
        conn.close()


def test_newer_schema_is_refused(tmp_path):
    path = str(tmp_path / "future.sqlite")
    conn = open_store_db(path)
    conn.execute(
        "INSERT INTO dbversion (version, release_ts, description)"
        " VALUES (?, 0, 'from the future')",
        (SCHEMA_VERSION + 1,),
    )
    conn.commit()
    conn.close()
    with pytest.raises(StoreError, match="newer than this code"):
        open_store_db(path)


def test_unopenable_path_raises_store_error(tmp_path):
    missing_dir = os.path.join(str(tmp_path), "no", "such", "dir", "s.sqlite")
    with pytest.raises(StoreError, match="cannot open store"):
        open_store_db(missing_dir)


def test_migration_failure_leaves_resumable_prefix(tmp_path):
    """A crash (or bug) mid-upgrade leaves a clean older version."""
    path = str(tmp_path / "s.sqlite")
    broken = MIGRATIONS[:1] + (
        (2, "broken step", ("THIS IS NOT SQL",)),
    )
    with pytest.raises(StoreError, match="migration to schema v2"):
        open_store_db(path, migrations=broken)
    # v1 applied and committed; the failed v2 left no partial state
    conn = sqlite3.connect(path)
    try:
        assert schema_version(conn) == 1
    finally:
        conn.close()
    # ... and the real v2 migration completes the upgrade later
    conn = open_store_db(path)
    try:
        assert schema_version(conn) == SCHEMA_VERSION
    finally:
        conn.close()


def test_v2_store_upgrades_to_v3_and_gains_calibration(tmp_path):
    """A store from the pre-calibration release opens and gains the table."""
    path = str(tmp_path / "v2.sqlite")
    conn = open_store_db(path, migrations=MIGRATIONS[:2])
    assert schema_version(conn) == 2
    with pytest.raises(sqlite3.OperationalError):
        conn.execute("SELECT * FROM calibration")
    conn.close()

    store = StateStore(path)
    try:
        assert store.load_calibration("engine-mode-profile") is None
        store.save_calibration("engine-mode-profile", "{}")
        assert store.load_calibration("engine-mode-profile") == "{}"
    finally:
        store.close()
    conn = sqlite3.connect(path)
    try:
        assert schema_version(conn) == SCHEMA_VERSION
    finally:
        conn.close()
